// Concurrent-dispatch and elevator-policy tests for the query scheduler.
//
// The event-driven Run() loop keeps several QuerySessions in flight in
// simulated time whenever the site's free drives / memory / session disk can
// cover another admitted request. These tests pin down the concurrency
// contract: disjoint queries genuinely overlap in virtual time and cut
// makespan; outcomes are a pure function of the submitted request set —
// independent of the order Submit() was called in, including submissions
// interleaved from on_complete callbacks, under an active fault plan; the
// elevator policy sweeps the library by slot with an aging valve against
// starvation; and cartridge-affinity drive routing keeps hot cartridges
// mounted so the robot makes fewer exchange trips.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "exec/query_scheduler.h"
#include "exec/query_session.h"
#include "exec/service_workload.h"
#include "exec/site.h"
#include "sim/auditor.h"
#include "sim/fault.h"
#include "sim/simulation.h"

namespace tertio::exec {
namespace {

// A site wide enough for two 2-drive sessions side by side.
SiteConfig WideSite() {
  SiteConfig config;
  config.with_library = true;
  config.drive_count = 4;
  config.memory_bytes = 32 * kMB;
  config.disk_space_bytes = 1000 * kMB;
  return config;
}

// Two S cartridges and R relations spread over two cartridges, so a pair of
// queries can touch fully disjoint media.
ServiceWorkloadConfig DisjointWorkload(int r_relations, int r_cartridges, int s_cartridges) {
  ServiceWorkloadConfig config;
  config.s_cartridges = s_cartridges;
  config.s_bytes = 100 * kMB;
  config.r_relations = r_relations;
  config.r_cartridges = r_cartridges;
  config.r_bytes = 5 * kMB;
  config.phantom = true;
  return config;
}

// A request sized to half the site, so two fit at once.
JoinRequest HalfSiteRequest(Site* site, const ServiceWorkload& workload, int r_index,
                            int s_index, SimSeconds arrival) {
  JoinRequest request;
  request.arrival = arrival;
  request.spec.r = &workload.r[static_cast<size_t>(r_index)];
  request.spec.s = &workload.s[static_cast<size_t>(s_index)];
  request.method = JoinMethodId::kCdtGh;
  request.memory_blocks = site->memory_blocks() / 2;
  request.disk_blocks = site->session_disk_blocks() / 2;
  return request;
}

TEST(SchedulerConcurrencyTest, DisjointQueriesOverlapInVirtualTimeAndCutMakespan) {
  struct RunResult {
    std::vector<QueryOutcome> outcomes;
    ServiceStats stats;
  };
  auto run = [](int max_in_flight, bool audited) {
    auto site = std::make_unique<Site>(WideSite());
    if (audited) site->EnableAudit();
    auto workload = PrepareServiceWorkload(site.get(), DisjointWorkload(2, 2, 2));
    TERTIO_CHECK(workload.ok(), "workload setup failed");
    SchedulerOptions options;
    options.max_in_flight = max_in_flight;
    QueryScheduler scheduler(site.get(), ServicePolicy::kFifo, options);
    auto q1 = scheduler.Submit(HalfSiteRequest(site.get(), *workload, 0, 0, 0.0));
    auto q2 = scheduler.Submit(HalfSiteRequest(site.get(), *workload, 1, 1, 0.0));
    TERTIO_CHECK(q1.ok() && q2.ok(), "submit failed");
    Status ran = scheduler.Run();
    TERTIO_CHECK(ran.ok(), "run failed");
    if (audited) {
      Status clean = site->auditor()->Check();
      TERTIO_CHECK(clean.ok(), "overlapping sessions must stay SimSan-clean");
      TERTIO_CHECK(site->auditor()->checks_performed() > 0, "auditor must be live");
    }
    RunResult result;
    result.outcomes = scheduler.outcomes();
    result.stats = scheduler.service_stats();
    return result;
  };

  RunResult serial = run(1, /*audited=*/false);
  RunResult concurrent = run(2, /*audited=*/true);

  ASSERT_EQ(serial.outcomes.size(), 2u);
  ASSERT_EQ(concurrent.outcomes.size(), 2u);
  for (const QueryOutcome& out : concurrent.outcomes) {
    EXPECT_TRUE(out.status.ok()) << out.status;
    EXPECT_GE(out.start, out.arrival);
  }
  EXPECT_EQ(serial.stats.peak_in_flight, 1u);
  EXPECT_EQ(concurrent.stats.peak_in_flight, 2u);

  // Outcomes retire in virtual-completion order; with both queries
  // dispatched at t=0 on disjoint drives their executions overlap: the
  // second starts long before the first completes.
  EXPECT_LT(concurrent.outcomes[1].start, concurrent.outcomes[0].completion);
  // Serially the second query cannot start until the first completed.
  EXPECT_GE(serial.outcomes[1].start, serial.outcomes[0].completion);

  // The overlap is the whole point: the queue drains materially sooner.
  EXPECT_LT(concurrent.stats.makespan, serial.stats.makespan);
  EXPECT_EQ(concurrent.stats.completed, 2u);
}

TEST(SchedulerConcurrencyTest, FailedExecutionLeavesTheDrivePoolIntact) {
  auto site = std::make_unique<Site>(WideSite());
  auto workload = PrepareServiceWorkload(site.get(), DisjointWorkload(2, 2, 2));
  ASSERT_TRUE(workload.ok()) << workload.status();
  SchedulerOptions options;
  options.max_in_flight = 2;
  QueryScheduler scheduler(site.get(), ServicePolicy::kFifo, options);

  // Passes admission (the demand fits an idle site) but fails in execution:
  // the disk carve is far below what CDT-GH needs.
  JoinRequest broken = HalfSiteRequest(site.get(), *workload, 0, 0, 0.0);
  broken.disk_blocks = 2;
  ASSERT_TRUE(scheduler.Submit(broken).ok());
  ASSERT_TRUE(scheduler.Submit(HalfSiteRequest(site.get(), *workload, 1, 1, 0.0)).ok());
  ASSERT_TRUE(scheduler.Run().ok());

  ServiceStats stats = scheduler.service_stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 1u);
  // Regression: a failed query's session must release its drives through
  // the lease guard — nothing may stay leased once the queue drains.
  EXPECT_EQ(site->free_drives(), site->drive_count());
  EXPECT_EQ(site->memory().reserved_blocks(), 0u);
}

// One comparable signature per outcome: everything a client can observe.
using OutcomeKey = std::tuple<std::uint64_t, bool, SimSeconds, SimSeconds, bool, bool>;

OutcomeKey KeyOf(const QueryOutcome& out) {
  return {out.id, out.status.ok(), out.start, out.completion, out.scan_shared, out.cached};
}

// Runs one six-query service (four upfront, two submitted from the first
// completion's on_complete callback) and returns the outcome signatures.
// `flip` permutes every Submit() interleaving the client controls — the
// upfront order and the order inside the callback — without changing the
// request set: ids, arrivals and specs are identical across flips.
std::vector<OutcomeKey> RunPermuted(ServicePolicy policy, int max_in_flight, bool flip) {
  SiteConfig site_config = WideSite();
  // An active fault plan: every mount and read consults the seeded
  // injectors, so any dispatch-order dependence would desynchronize the
  // draw sequence and show up as a completion-time diff.
  site_config.faults.seed = 7;
  site_config.faults.tape.transient_read_error_rate = 1e-5;
  site_config.faults.robot.exchange_failure_rate = 0.05;
  auto site = std::make_unique<Site>(site_config);
  auto workload = PrepareServiceWorkload(site.get(), DisjointWorkload(4, 2, 2));
  TERTIO_CHECK(workload.ok(), "workload setup failed");

  SchedulerOptions options;
  options.max_in_flight = max_in_flight;
  QueryScheduler scheduler(site.get(), policy, options);

  auto request = [&](std::uint64_t id, int r_index, int s_index, SimSeconds arrival) {
    JoinRequest r = HalfSiteRequest(site.get(), *workload, r_index, s_index, arrival);
    r.id = id;
    return r;
  };
  std::vector<JoinRequest> upfront;
  upfront.push_back(request(1, 0, 0, 0.0));
  upfront.push_back(request(2, 1, 1, 0.0));
  upfront.push_back(request(3, 2, 0, 30.0));
  upfront.push_back(request(4, 3, 1, 60.0));
  if (flip) std::reverse(upfront.begin(), upfront.end());
  for (JoinRequest& r : upfront) {
    auto id = scheduler.Submit(std::move(r));
    TERTIO_CHECK(id.ok(), "submit failed");
  }

  bool fired = false;
  scheduler.set_on_complete([&](const QueryOutcome& out) {
    if (fired) return;
    fired = true;
    // Two closed-loop arrivals at the first completion, submitted in
    // opposite orders across the flip.
    JoinRequest a = request(5, 0, 1, out.completion);
    JoinRequest b = request(6, 1, 0, out.completion);
    if (flip) std::swap(a, b);
    auto first = scheduler.Submit(std::move(a));
    auto second = scheduler.Submit(std::move(b));
    TERTIO_CHECK(first.ok() && second.ok(), "closed-loop submit failed");
  });

  Status ran = scheduler.Run();
  TERTIO_CHECK(ran.ok(), "run failed");
  std::vector<OutcomeKey> keys;
  for (const QueryOutcome& out : scheduler.outcomes()) keys.push_back(KeyOf(out));
  TERTIO_CHECK(keys.size() == 6, "every query must produce an outcome");
  return keys;
}

TEST(SchedulerConcurrencyTest, OutcomesAreIndependentOfSubmitInterleaving) {
  for (ServicePolicy policy :
       {ServicePolicy::kFifo, ServicePolicy::kSharedScan, ServicePolicy::kElevator}) {
    for (int cap : {1, 2}) {
      SCOPED_TRACE("policy " + std::to_string(static_cast<int>(policy)) + " cap " +
                   std::to_string(cap));
      std::vector<OutcomeKey> forward = RunPermuted(policy, cap, /*flip=*/false);
      std::vector<OutcomeKey> flipped = RunPermuted(policy, cap, /*flip=*/true);
      // Identical request sets must yield bit-identical outcome sequences —
      // same retirement order, same starts and completions to the last ulp —
      // no matter how the client interleaved its Submit() calls.
      EXPECT_EQ(forward, flipped);
    }
  }
}

TEST(SchedulerElevatorTest, SweepOrdersDispatchBySlotAndAgingPromotesTheOldest) {
  // Slot layout: the shared R cartridge sits in slot 0, then S0..S2 in
  // slots 1..3. Arrivals are staggered so only the S2 query has arrived
  // when the service starts.
  auto run = [](SimSeconds aging) {
    SiteConfig config;
    config.with_library = true;
    auto site = std::make_unique<Site>(config);
    auto workload = PrepareServiceWorkload(site.get(), DisjointWorkload(3, 1, 3));
    TERTIO_CHECK(workload.ok(), "workload setup failed");
    SchedulerOptions options;
    options.elevator_aging_seconds = aging;
    QueryScheduler scheduler(site.get(), ServicePolicy::kElevator, options);
    auto full = [&](std::uint64_t id, int r_index, int s_index, SimSeconds arrival) {
      JoinRequest r;
      r.id = id;
      r.arrival = arrival;
      r.spec.r = &workload->r[static_cast<size_t>(r_index)];
      r.spec.s = &workload->s[static_cast<size_t>(s_index)];
      r.method = JoinMethodId::kCdtGh;
      r.memory_blocks = site->memory_blocks();
      r.disk_blocks = site->session_disk_blocks();
      auto submitted = scheduler.Submit(std::move(r));
      TERTIO_CHECK(submitted.ok(), "submit failed");
    };
    full(1, 0, 2, 0.0);
    full(2, 1, 0, 1.0);
    full(3, 2, 1, 2.0);
    Status ran = scheduler.Run();
    TERTIO_CHECK(ran.ok(), "run failed");
    std::vector<std::uint64_t> order;
    for (const QueryOutcome& out : scheduler.outcomes()) {
      TERTIO_CHECK(out.status.ok(), "every query must complete");
      order.push_back(out.id);
    }
    return order;
  };

  // A generous aging bound lets the sweep rule: after the S2 query the arm
  // sits at slot 3, reverses, and serves S1 (slot 2) before S0 (slot 1) —
  // even though the S0 query arrived first.
  std::vector<std::uint64_t> sweep = run(/*aging=*/1e9);
  EXPECT_EQ(sweep, (std::vector<std::uint64_t>{1, 3, 2}));

  // A zero aging bound force-promotes the oldest bypassed query every time:
  // the elevator degenerates to arrival order, its starvation valve.
  std::vector<std::uint64_t> aged = run(/*aging=*/0.0);
  EXPECT_EQ(aged, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(SchedulerElevatorTest, AffinityKeepsCartridgesMountedAndCutsRobotExchanges) {
  // Four queries alternating between two S cartridges. FIFO ping-pongs the
  // S drive between them (an eject + inject pair per swap); the elevator
  // batches same-slot queries, and cartridge-affinity drive routing turns
  // the repeat mounts into no-ops.
  auto run = [](ServicePolicy policy) {
    SiteConfig config;
    config.with_library = true;
    // Positive per-slot travel so the arm's path length is costed too.
    config.library_model.travel_seconds_per_slot = 2.0;
    auto site = std::make_unique<Site>(config);
    auto workload = PrepareServiceWorkload(site.get(), DisjointWorkload(4, 1, 2));
    TERTIO_CHECK(workload.ok(), "workload setup failed");
    QueryScheduler scheduler(site.get(), policy);
    for (int j = 0; j < 4; ++j) {
      JoinRequest r;
      r.arrival = 0.0;
      r.spec.r = &workload->r[static_cast<size_t>(j)];
      r.spec.s = &workload->s[static_cast<size_t>(j % 2)];
      r.method = JoinMethodId::kCdtGh;
      r.memory_blocks = site->memory_blocks();
      r.disk_blocks = site->session_disk_blocks();
      auto submitted = scheduler.Submit(std::move(r));
      TERTIO_CHECK(submitted.ok(), "submit failed");
    }
    Status ran = scheduler.Run();
    TERTIO_CHECK(ran.ok(), "run failed");
    ServiceStats stats = scheduler.service_stats();
    TERTIO_CHECK(stats.completed == 4, "every query must complete");
    return stats;
  };

  ServiceStats fifo = run(ServicePolicy::kFifo);
  ServiceStats elevator = run(ServicePolicy::kElevator);

  // FIFO: initial R + S0 injects, then three S swaps of two trips each.
  EXPECT_EQ(fifo.robot_exchanges, 8u);
  // Elevator: initial R + S0 injects, one swap to S1; both repeats no-op.
  EXPECT_EQ(elevator.robot_exchanges, 4u);
  EXPECT_LT(elevator.robot_exchanges, fifo.robot_exchanges);
  // Fewer trips (and less arm travel) is real saved time.
  EXPECT_LT(elevator.makespan, fifo.makespan);
}

}  // namespace
}  // namespace tertio::exec
