// Tests for tertio_query: expressions, sink operators, and end-to-end
// queries pipelined from a tertiary join.

#include <gtest/gtest.h>

#include "exec/machine.h"
#include "join/reference_join.h"
#include "query/query.h"
#include "relation/generator.h"

namespace tertio::query {
namespace {

Row MakeRow(std::initializer_list<Value> values) {
  Row row;
  row.values = values;
  return row;
}

TEST(ExprTest, ColumnAndLiteral) {
  Row row = MakeRow({std::int64_t{7}, 2.5, std::string("abc")});
  EXPECT_EQ(std::get<std::int64_t>(Col(0)->Eval(row).value()), 7);
  EXPECT_DOUBLE_EQ(std::get<double>(Col(1)->Eval(row).value()), 2.5);
  EXPECT_EQ(std::get<std::string>(Col(2)->Eval(row).value()), "abc");
  EXPECT_EQ(std::get<std::int64_t>(Lit(std::int64_t{3})->Eval(row).value()), 3);
  EXPECT_FALSE(Col(9)->Eval(row).ok());
}

TEST(ExprTest, Comparisons) {
  Row row = MakeRow({std::int64_t{7}, 2.5});
  auto truthy = [&](ExprPtr e) { return std::get<std::int64_t>(e->Eval(row).value()) != 0; };
  EXPECT_TRUE(truthy(Eq(Col(0), Lit(std::int64_t{7}))));
  EXPECT_TRUE(truthy(Ne(Col(0), Lit(std::int64_t{8}))));
  EXPECT_TRUE(truthy(Lt(Col(1), Lit(3.0))));
  EXPECT_TRUE(truthy(Ge(Col(0), Lit(std::int64_t{7}))));
  // Mixed int/double comparison promotes.
  EXPECT_TRUE(truthy(Gt(Col(0), Lit(6.5))));
  // Strings compare lexicographically; string-vs-number errors.
  Row srow = MakeRow({std::string("abc"), std::string("abd")});
  EXPECT_TRUE(std::get<std::int64_t>(Lt(Col(0), Col(1))->Eval(srow).value()) != 0);
  EXPECT_FALSE(Eq(Col(0), Lit(std::int64_t{1}))->Eval(srow).ok());
}

TEST(ExprTest, BooleanShortCircuit) {
  Row row = MakeRow({std::int64_t{1}});
  // RHS would error (string in boolean context) but is short-circuited away.
  Row srow = MakeRow({std::int64_t{0}, std::string("x")});
  auto and_expr = And(Col(0), Col(1));
  EXPECT_EQ(std::get<std::int64_t>(and_expr->Eval(srow).value()), 0);
  auto or_expr = Or(Lit(std::int64_t{1}), Col(1));
  EXPECT_EQ(std::get<std::int64_t>(or_expr->Eval(srow).value()), 1);
  EXPECT_EQ(std::get<std::int64_t>(Not(Col(0))->Eval(row).value()), 0);
}

TEST(ExprTest, Arithmetic) {
  Row row = MakeRow({std::int64_t{6}, 2.5});
  EXPECT_EQ(std::get<std::int64_t>(Add(Col(0), Lit(std::int64_t{4}))->Eval(row).value()), 10);
  EXPECT_EQ(std::get<std::int64_t>(Mul(Col(0), Lit(std::int64_t{3}))->Eval(row).value()), 18);
  EXPECT_DOUBLE_EQ(std::get<double>(Sub(Col(1), Lit(0.5))->Eval(row).value()), 2.0);
  // int op double promotes to double.
  EXPECT_DOUBLE_EQ(std::get<double>(Add(Col(0), Col(1))->Eval(row).value()), 8.5);
  Row srow = MakeRow({std::string("x")});
  EXPECT_FALSE(Add(Col(0), Lit(std::int64_t{1}))->Eval(srow).ok());
}

TEST(SinkTest, FilterForwardsMatchesOnly) {
  CollectSink collect;
  FilterSink filter(Gt(Col(0), Lit(std::int64_t{5})), &collect);
  for (std::int64_t v : {3, 7, 5, 9}) {
    ASSERT_TRUE(filter.Consume(MakeRow({v})).ok());
  }
  ASSERT_TRUE(filter.Finish().ok());
  ASSERT_EQ(collect.rows().size(), 2u);
  EXPECT_EQ(filter.rows_in(), 4u);
  EXPECT_EQ(filter.rows_out(), 2u);
  EXPECT_EQ(std::get<std::int64_t>(collect.rows()[0].values[0]), 7);
}

TEST(SinkTest, ProjectMapsExpressions) {
  CollectSink collect;
  std::vector<ExprPtr> exprs;
  exprs.push_back(Mul(Col(0), Lit(std::int64_t{2})));
  exprs.push_back(Lit(std::string("tag")));
  ProjectSink project(std::move(exprs), &collect);
  ASSERT_TRUE(project.Consume(MakeRow({std::int64_t{21}})).ok());
  ASSERT_TRUE(project.Finish().ok());
  ASSERT_EQ(collect.rows().size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(collect.rows()[0].values[0]), 42);
  EXPECT_EQ(std::get<std::string>(collect.rows()[0].values[1]), "tag");
}

TEST(SinkTest, AggregateGroupsAndFolds) {
  CollectSink collect;
  std::vector<ExprPtr> group;
  group.push_back(Col(0));
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kCount, nullptr});
  aggs.push_back(AggSpec{AggKind::kSum, Col(1)});
  aggs.push_back(AggSpec{AggKind::kMin, Col(1)});
  aggs.push_back(AggSpec{AggKind::kMax, Col(1)});
  aggs.push_back(AggSpec{AggKind::kAvg, Col(1)});
  AggregateSink agg(std::move(group), std::move(aggs), &collect);
  // Two groups: "a" -> {1.0, 3.0}, "b" -> {10.0}.
  ASSERT_TRUE(agg.Consume(MakeRow({std::string("a"), 1.0})).ok());
  ASSERT_TRUE(agg.Consume(MakeRow({std::string("b"), 10.0})).ok());
  ASSERT_TRUE(agg.Consume(MakeRow({std::string("a"), 3.0})).ok());
  ASSERT_TRUE(agg.Finish().ok());
  ASSERT_EQ(collect.rows().size(), 2u);
  const Row& a = collect.rows()[0];
  EXPECT_EQ(std::get<std::string>(a.values[0]), "a");
  EXPECT_EQ(std::get<std::int64_t>(a.values[1]), 2);
  EXPECT_DOUBLE_EQ(std::get<double>(a.values[2]), 4.0);
  EXPECT_DOUBLE_EQ(std::get<double>(a.values[3]), 1.0);
  EXPECT_DOUBLE_EQ(std::get<double>(a.values[4]), 3.0);
  EXPECT_DOUBLE_EQ(std::get<double>(a.values[5]), 2.0);
  const Row& b = collect.rows()[1];
  EXPECT_EQ(std::get<std::string>(b.values[0]), "b");
  EXPECT_EQ(std::get<std::int64_t>(b.values[1]), 1);
}

TEST(SinkTest, LimitStopsForwarding) {
  CollectSink collect;
  LimitSink limit(2, &collect);
  for (std::int64_t v = 0; v < 10; ++v) {
    ASSERT_TRUE(limit.Consume(MakeRow({v})).ok());
  }
  ASSERT_TRUE(limit.Finish().ok());
  EXPECT_EQ(collect.rows().size(), 2u);
}

TEST(RowTest, JoinedSchemaAndValues) {
  rel::Schema schema = rel::Schema::KeyPayload(32);
  RowSchema joined = RowSchema::Joined(schema, "r", schema, "s");
  ASSERT_EQ(joined.columns.size(), 4u);
  EXPECT_EQ(joined.columns[0].name, "r.key");
  EXPECT_EQ(joined.columns[3].name, "s.payload");
  EXPECT_EQ(joined.Find("s.key").value(), 2u);
  EXPECT_FALSE(joined.Find("nope").ok());
}

// ---- End-to-end: query over a simulated tertiary join. -------------------

class QueryEndToEndTest : public ::testing::Test {
 protected:
  QueryEndToEndTest() {
    exec::MachineConfig config;
    config.block_bytes = 1024;
    config.memory_bytes = 24 * 1024;
    config.disk_space_bytes = 96 * 1024;
    config.stripe_unit = 4;
    machine_ = std::make_unique<exec::Machine>(config);
    rel::GeneratorConfig r_config;
    r_config.name = "R";
    r_config.tuple_count = 200;
    r_config.keys = rel::KeySequence::kSequentialUnique;
    r_ = rel::GenerateOnTape(r_config, &machine_->tape_r()).value();
    rel::GeneratorConfig s_config;
    s_config.name = "S";
    s_config.tuple_count = 1000;
    s_config.keys = rel::KeySequence::kForeignKeyUniform;
    s_config.key_domain = 200;
    s_config.seed = 77;
    s_ = rel::GenerateOnTape(s_config, &machine_->tape_s()).value();
    machine_->MountTapes();
  }

  std::unique_ptr<exec::Machine> machine_;
  rel::Relation r_, s_;
};

TEST_F(QueryEndToEndTest, CountStarEqualsJoinCardinality) {
  CountSink count;
  TertiaryQuery query;
  query.r = &r_;
  query.s = &s_;
  query.pipeline = &count;
  join::JoinContext ctx = machine_->context();
  auto stats = ExecuteQuery(query, ctx);
  ASSERT_TRUE(stats.ok()) << stats.status();
  auto reference = join::ReferenceJoin(r_, s_, 0, 0);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(count.count(), reference->tuples());
  EXPECT_EQ(stats->join.output_tuples, reference->tuples());
}

TEST_F(QueryEndToEndTest, FilteredCountMatchesPredicateSemantics) {
  // Joined row layout: [r.key, r.payload, s.key, s.payload]; keep r.key < 50.
  CountSink count;
  FilterSink filter(Lt(Col(0), Lit(std::int64_t{50})), &count);
  TertiaryQuery query;
  query.r = &r_;
  query.s = &s_;
  query.pipeline = &filter;
  join::JoinContext ctx = machine_->context();
  auto stats = ExecuteQuery(query, ctx);
  ASSERT_TRUE(stats.ok()) << stats.status();
  // FK-uniform keys over [0,200): about a quarter of the 1000 matches.
  EXPECT_GT(count.count(), 150u);
  EXPECT_LT(count.count(), 350u);
  EXPECT_EQ(filter.rows_in(), stats->join.output_tuples);
}

TEST_F(QueryEndToEndTest, GroupByBucketOfKeys) {
  // SELECT r.key % ... no modulo expr; group by a coarse predicate value:
  // group on (r.key < 100), count rows per group.
  CollectSink collect;
  std::vector<ExprPtr> group;
  group.push_back(Lt(Col(0), Lit(std::int64_t{100})));
  std::vector<AggSpec> aggs;
  aggs.push_back(AggSpec{AggKind::kCount, nullptr});
  AggregateSink agg(std::move(group), std::move(aggs), &collect);
  TertiaryQuery query;
  query.r = &r_;
  query.s = &s_;
  query.pipeline = &agg;
  join::JoinContext ctx = machine_->context();
  auto stats = ExecuteQuery(query, ctx);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(collect.rows().size(), 2u);
  std::int64_t total = std::get<std::int64_t>(collect.rows()[0].values[1]) +
                       std::get<std::int64_t>(collect.rows()[1].values[1]);
  EXPECT_EQ(static_cast<std::uint64_t>(total), stats->join.output_tuples);
}

TEST_F(QueryEndToEndTest, SameResultUnderEveryJoinMethod) {
  // The pipeline is order-insensitive (count), so every method must deliver
  // the same result through it.
  std::uint64_t expected = join::ReferenceJoin(r_, s_, 0, 0)->tuples();
  for (JoinMethodId method : kAllJoinMethods) {
    CountSink count;
    TertiaryQuery query;
    query.r = &r_;
    query.s = &s_;
    query.pipeline = &count;
    query.method = method;
    join::JoinContext ctx = machine_->context();
    auto stats = ExecuteQuery(query, ctx);
    ASSERT_TRUE(stats.ok()) << JoinMethodName(method) << ": " << stats.status();
    EXPECT_EQ(count.count(), expected) << JoinMethodName(method);
  }
}

TEST_F(QueryEndToEndTest, AdvisorPicksWhenMethodUnset) {
  CountSink count;
  TertiaryQuery query;
  query.r = &r_;
  query.s = &s_;
  query.pipeline = &count;
  join::JoinContext ctx = machine_->context();
  auto stats = ExecuteQuery(query, ctx);
  ASSERT_TRUE(stats.ok());
  // Some method ran and reported itself.
  EXPECT_FALSE(stats->join.method.empty());
}

TEST_F(QueryEndToEndTest, PhantomRelationsRejected) {
  exec::MachineConfig config;
  config.block_bytes = 1024;
  exec::Machine machine(config);
  rel::GeneratorConfig g;
  g.tuple_count = 100;
  g.phantom = true;
  auto r = rel::GenerateOnTape(g, &machine.tape_r());
  auto s = rel::GenerateOnTape(g, &machine.tape_s());
  machine.MountTapes();
  CountSink count;
  TertiaryQuery query;
  query.r = &r.value();
  query.s = &s.value();
  query.pipeline = &count;
  join::JoinContext ctx = machine.context();
  EXPECT_FALSE(ExecuteQuery(query, ctx).ok());
}

TEST_F(QueryEndToEndTest, SinkErrorsPropagate) {
  // A pipeline stage with a type error (string compared to int) aborts the
  // query with InvalidArgument.
  CountSink count;
  FilterSink filter(Lt(Col(1), Lit(std::int64_t{5})), &count);  // payload is a string
  TertiaryQuery query;
  query.r = &r_;
  query.s = &s_;
  query.pipeline = &filter;
  join::JoinContext ctx = machine_->context();
  auto stats = ExecuteQuery(query, ctx);
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tertio::query
