// Tests of the deterministic sweep driver (exec/parallel_sweep.h): ordering
// and coverage of the static block-cyclic schedule, exception propagation,
// and — the property the bench suite depends on — bit-identical simulated
// results at any thread count, including with the fault model enabled.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/experiment.h"
#include "exec/machine.h"
#include "exec/parallel_sweep.h"
#include "join/join_method.h"

namespace tertio::exec {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 257;  // not a multiple of any worker count
  std::vector<std::atomic<int>> visits(kCount);
  ParallelFor(kCount, /*threads=*/8, [&](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroCountIsANoOp) {
  ParallelFor(0, 8, [&](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelForTest, PropagatesExceptionsFromWorkers) {
  EXPECT_THROW(ParallelFor(100, 4,
                           [&](std::size_t i) {
                             if (i == 63) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(ParallelSweepTest, ResultsArriveInInputOrder) {
  std::vector<int> points(100);
  std::iota(points.begin(), points.end(), 0);
  std::vector<int> serial = ParallelSweep(points, [](int p) { return p * p; }, 1);
  std::vector<int> parallel = ParallelSweep(points, [](int p) { return p * p; }, 8);
  ASSERT_EQ(serial.size(), points.size());
  EXPECT_EQ(serial, parallel);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(serial[i], points[i] * points[i]);
  }
}

TEST(ParseSweepThreadsTest, ParsesFlagAndDefaults) {
  char prog[] = "bench";
  char flag[] = "--threads=3";
  char other[] = "--benchmark_filter=x";
  char* with_flag[] = {prog, flag};
  char* without_flag[] = {prog, other};
  EXPECT_EQ(ParseSweepThreads(2, with_flag), 3);
  EXPECT_EQ(ParseSweepThreads(2, without_flag), 0);
  EXPECT_GE(EffectiveSweepThreads(0), 1);
  EXPECT_EQ(EffectiveSweepThreads(5), 5);
}

/// One figure-style sweep point: a phantom join on the paper testbed with
/// the fault model enabled (transient read errors + latent bad blocks).
Result<join::JoinStats> RunFaultSweepPoint(JoinMethodId method, double error_rate) {
  exec::MachineConfig machine = exec::MachineConfig::PaperTestbed(120 * kMB, 16 * kMB);
  machine.faults.seed = 7;
  machine.faults.tape.transient_read_error_rate = error_rate;
  machine.faults.disk.transient_read_error_rate = error_rate;
  machine.faults.tape.bad_block_rate = error_rate / 10.0;
  machine.faults.disk.bad_block_rate = error_rate / 10.0;
  exec::WorkloadConfig workload;
  workload.r_bytes = 80 * kMB;
  workload.s_bytes = 800 * kMB;
  workload.phantom = true;
  return exec::RunJoinExperiment(machine, workload, method);
}

/// The tentpole invariant: simulated results are a function of the sweep
/// point alone, never of the thread count — bit-identical JoinStats
/// (response/step/recovery seconds, traffic, fault counters) at --threads=1
/// and --threads=8.
TEST(ParallelSweepTest, FigureSweepIsBitIdenticalAcrossThreadCounts) {
  struct Point {
    JoinMethodId method;
    double rate;
  };
  std::vector<Point> points;
  for (JoinMethodId method :
       {JoinMethodId::kDtNb, JoinMethodId::kCdtGh, JoinMethodId::kCttGh}) {
    for (double rate : {0.0, 1e-4, 3e-3}) points.push_back({method, rate});
  }
  auto run = [](const Point& p) { return RunFaultSweepPoint(p.method, p.rate); };
  std::vector<Result<join::JoinStats>> serial = ParallelSweep(points, run, 1);
  std::vector<Result<join::JoinStats>> parallel = ParallelSweep(points, run, 8);
  ASSERT_EQ(serial.size(), points.size());
  ASSERT_EQ(parallel.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    ASSERT_EQ(serial[i].ok(), parallel[i].ok());
    if (!serial[i].ok()) continue;
    const join::JoinStats& a = *serial[i];
    const join::JoinStats& b = *parallel[i];
    // Exact double equality on purpose: the sweep driver must not perturb
    // the simulation in any way.
    EXPECT_EQ(a.response_seconds, b.response_seconds);
    EXPECT_EQ(a.step1_seconds, b.step1_seconds);
    EXPECT_EQ(a.step2_seconds, b.step2_seconds);
    EXPECT_EQ(a.recovery_seconds, b.recovery_seconds);
    EXPECT_EQ(a.disk_blocks_read, b.disk_blocks_read);
    EXPECT_EQ(a.disk_blocks_written, b.disk_blocks_written);
    EXPECT_EQ(a.tape_blocks_read, b.tape_blocks_read);
    EXPECT_EQ(a.tape_blocks_written, b.tape_blocks_written);
    EXPECT_EQ(a.disk_requests, b.disk_requests);
    EXPECT_EQ(a.r_scans, b.r_scans);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.bucket_overflow_slices, b.bucket_overflow_slices);
    EXPECT_EQ(a.peak_memory_blocks, b.peak_memory_blocks);
    EXPECT_EQ(a.peak_disk_blocks, b.peak_disk_blocks);
    EXPECT_EQ(a.robot_exchanges, b.robot_exchanges);
    EXPECT_EQ(a.faults_injected, b.faults_injected);
    EXPECT_EQ(a.fault_retries, b.fault_retries);
    EXPECT_EQ(a.blocks_remapped, b.blocks_remapped);
    EXPECT_EQ(a.chunk_retries, b.chunk_retries);
  }
  // Sanity: the fault plan actually fired, so the fault counters compared
  // above were non-trivially equal.
  bool any_faults = false;
  for (const auto& result : serial) {
    if (result.ok() && result->faults_injected > 0) any_faults = true;
  }
  EXPECT_TRUE(any_faults);
}

}  // namespace
}  // namespace tertio::exec
