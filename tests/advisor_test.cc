// Tests for the join advisor: the paper's Section 10 conclusions must fall
// out of the ranking.

#include <gtest/gtest.h>

#include "join/advisor.h"
#include "tape/tape_model.h"

namespace tertio::join {
namespace {

cost::CostParams Params(BlockCount r, BlockCount s, BlockCount m, BlockCount d) {
  cost::CostParams p;
  p.r_blocks = r;
  p.s_blocks = s;
  p.memory_blocks = m;
  p.disk_blocks = d;
  p.tape_rate_bps = 2.0e6;
  p.disk_rate_bps = 8.4e6;
  p.disk_positioning_seconds = 0.0145;
  return p;
}

TEST(AdvisorTest, RankedFastestFirstAndConsistent) {
  auto report = AdviseJoinMethod(Params(2304, 128000, 700, 6400));
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->ranked.empty());
  for (size_t i = 1; i < report->ranked.size(); ++i) {
    EXPECT_LE(report->ranked[i - 1].estimate.total_seconds,
              report->ranked[i].estimate.total_seconds);
  }
  EXPECT_EQ(report->ranked.size() + report->rejected.size(), kAllJoinMethods.size());
}

TEST(AdvisorTest, VeryLargeRPicksCttGh) {
  // "Of the join methods analyzed, CTT-GH is the sole candidate for very
  // large tape joins" — |R| far beyond D.
  auto report = AdviseJoinMethod(Params(500000, 2000000, 2000, 60000));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->best().method, JoinMethodId::kCttGh);
  // All disk-tape methods must be among the rejected.
  EXPECT_EQ(report->rejected.size(), 5u);
}

TEST(AdvisorTest, AmpleDiskLittleMemoryFavorsCdtGh) {
  // "When ample disk space but little main memory is available, CDT-GH is
  // the preferred join method." In Figure 5's D = 3|R| regime CDT-GH and
  // CTT-GH are nearly tied (983 vs 985 s in the simulator), so the firm
  // claim is: CDT-GH ranks in the top two and beats every other disk-tape
  // method.
  auto report = AdviseJoinMethod(Params(2304, 128000, 230, 4 * 2304));
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report->ranked.size(), 2u);
  EXPECT_TRUE(report->ranked[0].method == JoinMethodId::kCdtGh ||
              report->ranked[1].method == JoinMethodId::kCdtGh);
  auto estimate_of = [&](JoinMethodId id) -> double {
    for (const auto& choice : report->ranked) {
      if (choice.method == id) return choice.estimate.total_seconds.value();
    }
    return -1.0;
  };
  double cdt_gh = estimate_of(JoinMethodId::kCdtGh);
  ASSERT_GT(cdt_gh, 0.0);
  for (JoinMethodId other : {JoinMethodId::kDtNb, JoinMethodId::kCdtNbMb,
                             JoinMethodId::kCdtNbDb, JoinMethodId::kDtGh}) {
    double estimate = estimate_of(other);
    if (estimate > 0.0) {
      EXPECT_LT(cdt_gh, estimate) << JoinMethodName(other);
    }
  }
}

TEST(AdvisorTest, LargeMemoryPicksCdtNbMb) {
  // "CDT-NB yields very good performance when a large fraction of the
  // smaller relation fits in memory."
  auto report = AdviseJoinMethod(Params(2304, 128000, 2304, 6400));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->best().method, JoinMethodId::kCdtNbMb);
}

TEST(AdvisorTest, ConcurrentBeatsSequentialInRanking) {
  auto report = AdviseJoinMethod(Params(2304, 128000, 700, 6400));
  ASSERT_TRUE(report.ok());
  auto rank_of = [&](JoinMethodId id) -> int {
    for (size_t i = 0; i < report->ranked.size(); ++i) {
      if (report->ranked[i].method == id) return static_cast<int>(i);
    }
    return -1;
  };
  int cdt_gh = rank_of(JoinMethodId::kCdtGh);
  int dt_gh = rank_of(JoinMethodId::kDtGh);
  ASSERT_GE(cdt_gh, 0);
  ASSERT_GE(dt_gh, 0);
  EXPECT_LT(cdt_gh, dt_gh);
}

TEST(AdvisorTest, NothingFeasibleIsAnError) {
  // Memory of 1 block: no method can run (NB needs 2+, hashing needs more).
  auto report = AdviseJoinMethod(Params(100000, 1000000, 1, 50));
  EXPECT_EQ(report.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdvisorTest, RejectionsCarryReasons) {
  auto report = AdviseJoinMethod(Params(500000, 2000000, 2000, 60000));
  ASSERT_TRUE(report.ok());
  for (const auto& rejection : report->rejected) {
    EXPECT_FALSE(rejection.reason.ok());
    EXPECT_FALSE(rejection.reason.message().empty());
  }
}

}  // namespace
}  // namespace tertio::join
