// Unit tests for tertio_tape: volumes, drives, compression, library robot.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "sim/simulation.h"
#include "tape/tape_drive.h"
#include "tape/tape_library.h"
#include "tape/tape_scheduler.h"
#include "tape/tape_model.h"
#include "tape/tape_volume.h"

namespace tertio::tape {
namespace {

constexpr ByteCount kBlock = 1000;  // 1 KB blocks for readable arithmetic

BlockPayload MakeBlock(uint8_t fill) {
  return MakePayload(std::vector<uint8_t>(kBlock.value(), fill));
}

TEST(TapeVolumeTest, AppendAndRead) {
  TapeVolume vol("t", kBlock);
  ASSERT_TRUE(vol.Append(MakeBlock(1), 0.0).ok());
  ASSERT_TRUE(vol.Append(MakeBlock(2), 0.0).ok());
  EXPECT_EQ(vol.size_blocks(), 2u);
  EXPECT_EQ(vol.size_bytes(), 2 * kBlock);
  auto p = vol.ReadBlock(1);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p.value())[0], 2);
}

TEST(TapeVolumeTest, PhantomBlocksReadAsNull) {
  TapeVolume vol("t", kBlock);
  ASSERT_TRUE(vol.AppendPhantom(100, 0.25).ok());
  EXPECT_EQ(vol.size_blocks(), 100u);
  auto p = vol.ReadBlock(50);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value(), nullptr);
  EXPECT_DOUBLE_EQ(vol.Compressibility(50).value(), 0.25);
}

TEST(TapeVolumeTest, CapacityEnforced) {
  TapeVolume vol("t", kBlock, /*capacity_blocks=*/2);
  ASSERT_TRUE(vol.AppendPhantom(2, 0.0).ok());
  EXPECT_EQ(vol.AppendPhantom(1, 0.0).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(vol.Append(MakeBlock(1), 0.0).code(), StatusCode::kResourceExhausted);
}

TEST(TapeVolumeTest, OutOfRangeReadRejected) {
  TapeVolume vol("t", kBlock);
  ASSERT_TRUE(vol.AppendPhantom(5, 0.0).ok());
  EXPECT_FALSE(vol.ReadBlock(5).ok());
  EXPECT_FALSE(vol.MeanCompressibility(3, 3).ok());
}

TEST(TapeVolumeTest, InvalidCompressibilityRejected) {
  TapeVolume vol("t", kBlock);
  EXPECT_FALSE(vol.AppendPhantom(1, -0.1).ok());
  EXPECT_FALSE(vol.AppendPhantom(1, 1.0).ok());
}

TEST(TapeVolumeTest, TruncateReclaimsScratchSpace) {
  TapeVolume vol("t", kBlock);
  ASSERT_TRUE(vol.AppendPhantom(10, 0.0).ok());
  ASSERT_TRUE(vol.Truncate(4).ok());
  EXPECT_EQ(vol.size_blocks(), 4u);
  EXPECT_FALSE(vol.Truncate(5).ok());
}

TEST(TapeVolumeTest, MeanCompressibilityAverages) {
  TapeVolume vol("t", kBlock);
  ASSERT_TRUE(vol.AppendPhantom(2, 0.0).ok());
  ASSERT_TRUE(vol.AppendPhantom(2, 0.5).ok());
  EXPECT_NEAR(vol.MeanCompressibility(0, 4).value(), 0.25, 1e-9);
}

TEST(TapeModelTest, CompressionRaisesEffectiveRate) {
  TapeDriveModel m = TapeDriveModel::DLT4000();
  EXPECT_DOUBLE_EQ((m.EffectiveRate(0.0)).value(), (m.native_rate_bps).value());
  EXPECT_NEAR((m.EffectiveRate(0.25)).value(), (m.native_rate_bps / 0.75).value(), 1e-6);
  // 50%-compressible hits the 2:1 cap exactly.
  EXPECT_NEAR((m.EffectiveRate(0.5)).value(), (m.native_rate_bps * 2.0).value(), 1e-6);
  // Beyond-cap compressibility stays capped.
  EXPECT_NEAR((m.EffectiveRate(0.9)).value(), (m.native_rate_bps * 2.0).value(), 1e-6);
}

TEST(TapeModelTest, CompressionDisabledIgnoresCompressibility) {
  TapeDriveModel m = TapeDriveModel::DLT4000();
  m.compression_enabled = false;
  EXPECT_DOUBLE_EQ((m.EffectiveRate(0.5)).value(), (m.native_rate_bps).value());
}

class TapeDriveTest : public ::testing::Test {
 protected:
  TapeDriveTest()
      : vol_("t", kBlock),
        drive_("drv", TapeDriveModel::Ideal(/*rate_bps=*/1000.0), sim_.CreateResource("tape")) {}

  sim::Simulation sim_;
  TapeVolume vol_;
  TapeDrive drive_;
};

TEST_F(TapeDriveTest, ReadRequiresLoadedTape) {
  EXPECT_EQ(drive_.Read(0, 1, 0.0).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(drive_.Rewind(0.0).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(TapeDriveTest, SequentialReadCostsTransferTime) {
  ASSERT_TRUE(vol_.AppendPhantom(10, 0.0).ok());
  ASSERT_TRUE(drive_.Load(&vol_, 0.0).ok());
  // 10 blocks * 1000 B at 1000 B/s = 10 s.
  auto iv = drive_.Read(0, 10, 0.0);
  ASSERT_TRUE(iv.ok());
  EXPECT_DOUBLE_EQ((iv->duration()).value(), 10.0);
  EXPECT_EQ(drive_.head_position(), 10u);
  EXPECT_EQ(drive_.stats().blocks_read, 10u);
}

TEST_F(TapeDriveTest, ContiguousReadsStreamWithoutPenalty) {
  ASSERT_TRUE(vol_.AppendPhantom(10, 0.0).ok());
  ASSERT_TRUE(drive_.Load(&vol_, 0.0).ok());
  ASSERT_TRUE(drive_.Read(0, 5, 0.0).ok());
  auto iv = drive_.Read(5, 5, 100.0);  // idle gap, but contiguous: no reposition
  ASSERT_TRUE(iv.ok());
  EXPECT_DOUBLE_EQ((iv->duration()).value(), 5.0);
  EXPECT_EQ(drive_.stats().reposition_count, 0u);
}

TEST_F(TapeDriveTest, AppendReadsBackCorrectly) {
  ASSERT_TRUE(drive_.Load(&vol_, 0.0).ok());
  std::vector<BlockPayload> blocks{MakeBlock(7), MakeBlock(8)};
  ASSERT_TRUE(drive_.Append(blocks, 0.0, 0.0).ok());
  std::vector<BlockPayload> out;
  ASSERT_TRUE(drive_.Read(0, 2, 10.0, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ((*out[0])[0], 7);
  EXPECT_EQ((*out[1])[0], 8);
}

TEST_F(TapeDriveTest, RewindResetsHead) {
  ASSERT_TRUE(vol_.AppendPhantom(10, 0.0).ok());
  ASSERT_TRUE(drive_.Load(&vol_, 0.0).ok());
  ASSERT_TRUE(drive_.Read(0, 10, 0.0).ok());
  ASSERT_TRUE(drive_.Rewind(0.0).ok());
  EXPECT_EQ(drive_.head_position(), 0u);
  EXPECT_EQ(drive_.stats().rewind_count, 1u);
}

TEST_F(TapeDriveTest, ReadReverseWhenSupported) {
  ASSERT_TRUE(vol_.Append(MakeBlock(1), 0.0).ok());
  ASSERT_TRUE(vol_.Append(MakeBlock(2), 0.0).ok());
  ASSERT_TRUE(drive_.Load(&vol_, 0.0).ok());
  ASSERT_TRUE(drive_.Read(0, 2, 0.0).ok());
  std::vector<BlockPayload> out;
  auto iv = drive_.ReadReverse(2, 0.0, &out);
  ASSERT_TRUE(iv.ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ((*out[0])[0], 2);  // reverse order
  EXPECT_EQ((*out[1])[0], 1);
  EXPECT_EQ(drive_.head_position(), 0u);
}

TEST_F(TapeDriveTest, ReadReverseBeyondBotRejected) {
  ASSERT_TRUE(vol_.AppendPhantom(2, 0.0).ok());
  ASSERT_TRUE(drive_.Load(&vol_, 0.0).ok());
  ASSERT_TRUE(drive_.Read(0, 1, 0.0).ok());
  EXPECT_FALSE(drive_.ReadReverse(2, 0.0).ok());
}

TEST(TapeDriveRealisticTest, SeekChargesLocateAndReposition) {
  sim::Simulation sim;
  TapeDriveModel model = TapeDriveModel::DLT4000();
  TapeVolume vol("t", kBlock);
  ASSERT_TRUE(vol.AppendPhantom(1000, 0.0).ok());
  TapeDrive drive("drv", model, sim.CreateResource("tape"));
  ASSERT_TRUE(drive.Load(&vol, 0.0).ok());
  ASSERT_TRUE(drive.Read(0, 10, 0.0).ok());
  auto iv = drive.Read(500, 10, 1000.0);  // discontiguous: locate + reposition
  ASSERT_TRUE(iv.ok());
  double transfer = (10 * kBlock / model.native_rate_bps).value();
  double locate = model.locate_base_seconds.value() +
                  model.locate_seconds_per_byte * (500.0 - 10.0) * static_cast<double>(kBlock.value()) +
                  model.reposition_seconds.value();
  EXPECT_NEAR((iv->duration()).value(), transfer + locate, 1e-9);
  EXPECT_EQ(drive.stats().reposition_count, 1u);
  EXPECT_EQ(drive.stats().locate_count, 1u);
}

TEST(TapeDriveRealisticTest, ReadReverseUnimplementedOnDlt) {
  sim::Simulation sim;
  TapeVolume vol("t", kBlock);
  ASSERT_TRUE(vol.AppendPhantom(10, 0.0).ok());
  TapeDrive drive("drv", TapeDriveModel::DLT4000(), sim.CreateResource("tape"));
  ASSERT_TRUE(drive.Load(&vol, 0.0).ok());
  ASSERT_TRUE(drive.Read(0, 10, 0.0).ok());
  EXPECT_EQ(drive.ReadReverse(5, 0.0).status().code(), StatusCode::kUnimplemented);
}

TEST(TapeDriveRealisticTest, CompressibleDataTransfersFaster) {
  sim::Simulation sim;
  TapeDriveModel model = TapeDriveModel::DLT4000();
  TapeVolume vol("t", kBlock);
  ASSERT_TRUE(vol.AppendPhantom(100, 0.25).ok());
  TapeDrive drive("drv", model, sim.CreateResource("tape"));
  ASSERT_TRUE(drive.Load(&vol, 0.0).ok());
  auto iv = drive.Read(0, 100, 0.0);
  ASSERT_TRUE(iv.ok());
  double expected = (100 * kBlock / (model.native_rate_bps / 0.75)).value();
  EXPECT_NEAR((iv->duration()).value(), expected, 1e-9);
}

TEST(TapeLibraryTest, MountChargesRobotAndLoad) {
  sim::Simulation sim;
  TapeLibraryModel lm = TapeLibraryModel::SmallAutoloader();
  TapeLibrary library(lm, sim.CreateResource("robot"));
  auto slot = library.AddCartridge(std::make_unique<TapeVolume>("t0", kBlock));
  ASSERT_TRUE(slot.ok());
  TapeDriveModel dm = TapeDriveModel::DLT4000();
  TapeDrive drive("drv", dm, sim.CreateResource("tape"));
  auto iv = library.Mount(slot.value(), &drive, 0.0);
  ASSERT_TRUE(iv.ok());
  EXPECT_DOUBLE_EQ(iv->end.value(), (lm.exchange_seconds + dm.load_seconds).value());
  EXPECT_TRUE(drive.loaded());
}

TEST(TapeLibraryTest, RemountIsNoOp) {
  sim::Simulation sim;
  TapeLibrary library(TapeLibraryModel::SmallAutoloader(), sim.CreateResource("robot"));
  auto slot = library.AddCartridge(std::make_unique<TapeVolume>("t0", kBlock));
  TapeDrive drive("drv", TapeDriveModel::Ideal(1000), sim.CreateResource("tape"));
  ASSERT_TRUE(library.Mount(slot.value(), &drive, 0.0).ok());
  auto again = library.Mount(slot.value(), &drive, 50.0);
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ((again->duration()).value(), 0.0);
}

TEST(TapeLibraryTest, ExchangeReturnsPreviousCartridge) {
  sim::Simulation sim;
  TapeLibraryModel lm = TapeLibraryModel::SmallAutoloader();
  TapeLibrary library(lm, sim.CreateResource("robot"));
  auto s0 = library.AddCartridge(std::make_unique<TapeVolume>("t0", kBlock));
  auto s1 = library.AddCartridge(std::make_unique<TapeVolume>("t1", kBlock));
  TapeDrive drive("drv", TapeDriveModel::Ideal(1000), sim.CreateResource("tape"));
  ASSERT_TRUE(library.Mount(s0.value(), &drive, 0.0).ok());
  auto iv = library.Mount(s1.value(), &drive, 100.0);
  ASSERT_TRUE(iv.ok());
  // eject trip + inject trip
  EXPECT_DOUBLE_EQ(iv->end.value(), (100.0 + 2 * lm.exchange_seconds).value());
  // Old cartridge is home again: can be mounted into another drive.
  TapeDrive drive2("drv2", TapeDriveModel::Ideal(1000), sim.CreateResource("tape2"));
  EXPECT_TRUE(library.Mount(s0.value(), &drive2, 300.0).ok());
}

TEST(TapeLibraryTest, MountedElsewhereRejected) {
  sim::Simulation sim;
  TapeLibrary library(TapeLibraryModel::SmallAutoloader(), sim.CreateResource("robot"));
  auto s0 = library.AddCartridge(std::make_unique<TapeVolume>("t0", kBlock));
  TapeDrive a("a", TapeDriveModel::Ideal(1000), sim.CreateResource("ta"));
  TapeDrive b("b", TapeDriveModel::Ideal(1000), sim.CreateResource("tb"));
  ASSERT_TRUE(library.Mount(s0.value(), &a, 0.0).ok());
  EXPECT_EQ(library.Mount(s0.value(), &b, 0.0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TapeLibraryTest, DismountStowsCartridge) {
  sim::Simulation sim;
  TapeLibrary library(TapeLibraryModel::SmallAutoloader(), sim.CreateResource("robot"));
  auto s0 = library.AddCartridge(std::make_unique<TapeVolume>("t0", kBlock));
  TapeDrive drive("drv", TapeDriveModel::Ideal(1000), sim.CreateResource("tape"));
  ASSERT_TRUE(library.Mount(s0.value(), &drive, 0.0).ok());
  ASSERT_TRUE(library.Dismount(&drive, 10.0).ok());
  EXPECT_FALSE(drive.loaded());
  // Exchange-time claim of Section 3.2: one exchange is seconds, reading a
  // full cartridge is hours — checked in cost_test at full scale.
}

TEST(TapeLibraryTest, SlotLimitEnforced) {
  sim::Simulation sim;
  TapeLibraryModel lm;
  lm.slots = 1;
  TapeLibrary library(lm, sim.CreateResource("robot"));
  ASSERT_TRUE(library.AddCartridge(std::make_unique<TapeVolume>("t0", kBlock)).ok());
  EXPECT_EQ(library.AddCartridge(std::make_unique<TapeVolume>("t1", kBlock)).status().code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace tertio::tape

// ---- TapeScheduler ---------------------------------------------------------

namespace tertio::tape {
namespace {

class TapeSchedulerTest : public ::testing::Test {
 protected:
  TapeSchedulerTest()
      : vol_("t", kBlock),
        drive_("drv", TapeDriveModel::DLT4000(), sim_.CreateResource("tape")) {
    // 1000 blocks of distinguishable real data.
    for (int i = 0; i < 1000; ++i) {
      TERTIO_CHECK(vol_.Append(MakeBlock(static_cast<uint8_t>(i & 0xFF)), 0.0).ok(), "");
    }
    TERTIO_CHECK(drive_.Load(&vol_, 0.0).ok(), "");
  }

  // Scattered requests in a deliberately bad arrival order.
  std::vector<TapeReadRequest> ScatteredRequests() {
    return {{1, 800, 10}, {2, 100, 10}, {3, 600, 10}, {4, 50, 10},
            {5, 900, 10}, {6, 300, 10}, {7, 450, 10}, {8, 10, 10}};
  }

  sim::Simulation sim_;
  TapeVolume vol_;
  TapeDrive drive_;
};

TEST_F(TapeSchedulerTest, SortedBatchBeatsFifo) {
  SimSeconds fifo_time, sorted_time;
  std::uint64_t fifo_repos, sorted_repos;
  {
    sim::Simulation sim;
    TapeDrive drive("f", TapeDriveModel::DLT4000(), sim.CreateResource("t"));
    ASSERT_TRUE(drive.Load(&vol_, 0.0).ok());
    TapeScheduler fifo(&drive, SchedulePolicy::kFifo);
    for (const auto& r : ScatteredRequests()) fifo.Submit(r);
    auto done = fifo.ExecuteBatch(0.0);
    ASSERT_TRUE(done.ok());
    fifo_time = done.completions.back().interval.end;
    fifo_repos = drive.stats().reposition_count;
  }
  {
    sim::Simulation sim;
    TapeDrive drive("s", TapeDriveModel::DLT4000(), sim.CreateResource("t"));
    ASSERT_TRUE(drive.Load(&vol_, 0.0).ok());
    TapeScheduler sorted(&drive, SchedulePolicy::kSortedAscending);
    for (const auto& r : ScatteredRequests()) sorted.Submit(r);
    auto done = sorted.ExecuteBatch(0.0);
    ASSERT_TRUE(done.ok());
    sorted_time = done.completions.back().interval.end;
    sorted_repos = drive.stats().reposition_count;
  }
  EXPECT_LT(sorted_time, fifo_time);
  EXPECT_LE(sorted_repos, fifo_repos);
}

TEST_F(TapeSchedulerTest, ElevatorContinuesFromHead) {
  // Head at 500; elevator serves >= 500 first, then wraps.
  ASSERT_TRUE(drive_.Read(490, 10, 0.0).ok());
  TapeScheduler elevator(&drive_, SchedulePolicy::kElevator);
  for (const auto& r : ScatteredRequests()) elevator.Submit(r);
  auto done = elevator.ExecuteBatch(1000.0);
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done.completions.size(), 8u);
  // First served request starts at or after the head (600 is the first).
  EXPECT_EQ(done.completions.front().id, 3u);
  // Wrapped tail is ascending from the lowest start.
  EXPECT_EQ(done.completions.back().id, 7u);
}

TEST_F(TapeSchedulerTest, PoliciesReturnIdenticalData) {
  auto run = [&](SchedulePolicy policy) {
    sim::Simulation sim;
    TapeDrive drive("d", TapeDriveModel::DLT4000(), sim.CreateResource("t"));
    TERTIO_CHECK(drive.Load(&vol_, 0.0).ok(), "");
    TapeScheduler scheduler(&drive, policy);
    for (const auto& r : ScatteredRequests()) scheduler.Submit(r);
    auto done = scheduler.ExecuteBatch(0.0, /*capture=*/true);
    TERTIO_CHECK(done.ok(), "");
    // Collate payload first-bytes by request id.
    std::map<uint64_t, std::vector<uint8_t>> by_id;
    for (const auto& completion : done.completions) {
      for (const auto& payload : completion.payloads) {
        by_id[completion.id].push_back((*payload)[0]);
      }
    }
    return by_id;
  };
  auto fifo = run(SchedulePolicy::kFifo);
  auto sorted = run(SchedulePolicy::kSortedAscending);
  auto elevator = run(SchedulePolicy::kElevator);
  EXPECT_EQ(fifo, sorted);
  EXPECT_EQ(fifo, elevator);
}

TEST_F(TapeSchedulerTest, EqualStartsBreakTiesByRequestId) {
  // Requests sharing a start position must execute in id order no matter
  // how submission interleaved them — the executed order (and thus the
  // drive timeline) is a function of the request set alone.
  std::vector<TapeReadRequest> ties = {{4, 200, 5}, {1, 200, 5}, {3, 200, 5},
                                       {2, 700, 5}, {5, 700, 5}};
  for (SchedulePolicy policy : {SchedulePolicy::kSortedAscending, SchedulePolicy::kElevator}) {
    std::vector<std::vector<std::uint64_t>> orders;
    // Two opposite submission interleavings.
    for (bool reversed : {false, true}) {
      sim::Simulation sim;
      TapeDrive drive("d", TapeDriveModel::DLT4000(), sim.CreateResource("t"));
      ASSERT_TRUE(drive.Load(&vol_, 0.0).ok());
      TapeScheduler scheduler(&drive, policy);
      std::vector<TapeReadRequest> submitted = ties;
      if (reversed) std::reverse(submitted.begin(), submitted.end());
      for (const auto& r : submitted) scheduler.Submit(r);
      auto done = scheduler.ExecuteBatch(0.0);
      ASSERT_TRUE(done.ok());
      std::vector<std::uint64_t> order;
      for (const auto& completion : done.completions) order.push_back(completion.id);
      orders.push_back(std::move(order));
    }
    EXPECT_EQ(orders[0], (std::vector<std::uint64_t>{1, 3, 4, 2, 5}));
    EXPECT_EQ(orders[0], orders[1]);
  }
}

TEST_F(TapeSchedulerTest, BatchDrainsPendingQueue) {
  TapeScheduler scheduler(&drive_, SchedulePolicy::kFifo);
  scheduler.Submit({1, 0, 5});
  EXPECT_EQ(scheduler.pending(), 1u);
  ASSERT_TRUE(scheduler.ExecuteBatch(0.0).ok());
  EXPECT_EQ(scheduler.pending(), 0u);
  auto empty = scheduler.ExecuteBatch(0.0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.completions.empty());
}

}  // namespace
}  // namespace tertio::tape

// ---- Spanned (multi-cartridge) volumes -------------------------------------

#include "tape/spanned_volume.h"

namespace tertio::tape {
namespace {

class SpannedVolumeTest : public ::testing::Test {
 protected:
  SpannedVolumeTest()
      : library_(TapeLibraryModel::SmallAutoloader(), sim_.CreateResource("robot")),
        drive_("drv", TapeDriveModel::DLT4000(), sim_.CreateResource("tape")) {
    // Three cartridges of 100 / 50 / 70 distinguishable blocks.
    int sizes[] = {100, 50, 70};
    uint8_t fill = 0;
    for (int size : sizes) {
      auto volume = std::make_unique<TapeVolume>("cart", kBlock);
      for (int b = 0; b < size; ++b) {
        TERTIO_CHECK(volume->Append(MakeBlock(fill++), 0.0).ok(), "");
      }
      slots_.push_back(library_.AddCartridge(std::move(volume)).value());
    }
  }

  sim::Simulation sim_;
  TapeLibrary library_;
  TapeDrive drive_;
  std::vector<int> slots_;
};

TEST_F(SpannedVolumeTest, ResolveMapsAcrossCartridges) {
  auto set = SpannedVolumeSet::Create(&library_, slots_);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->total_blocks(), 220u);
  EXPECT_EQ(set->cartridge_count(), 3);
  auto a = set->Resolve(0);
  EXPECT_EQ(a->member, 0);
  EXPECT_EQ(a->local, 0u);
  auto b = set->Resolve(99);
  EXPECT_EQ(b->member, 0);
  EXPECT_EQ(b->local, 99u);
  auto c = set->Resolve(100);
  EXPECT_EQ(c->member, 1);
  EXPECT_EQ(c->local, 0u);
  auto d = set->Resolve(219);
  EXPECT_EQ(d->member, 2);
  EXPECT_EQ(d->local, 69u);
  EXPECT_FALSE(set->Resolve(220).ok());
}

TEST_F(SpannedVolumeTest, ReadCrossesBoundariesWithExchanges) {
  auto set = SpannedVolumeSet::Create(&library_, slots_);
  ASSERT_TRUE(set.ok());
  SpannedReader reader(&set.value(), &drive_);
  std::vector<BlockPayload> out;
  // Read 80..180: tail of cartridge 0, all of 1, head of 2.
  auto interval = reader.Read(80, 100, 0.0, &out);
  ASSERT_TRUE(interval.ok()) << interval.status();
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ((*out[static_cast<size_t>(i)])[0], static_cast<uint8_t>(80 + i));
  }
  EXPECT_EQ(reader.exchanges(), 3u);  // initial mount + two boundary crossings
}

TEST_F(SpannedVolumeTest, SequentialReadsReuseMountedCartridge) {
  auto set = SpannedVolumeSet::Create(&library_, slots_);
  ASSERT_TRUE(set.ok());
  SpannedReader reader(&set.value(), &drive_);
  ASSERT_TRUE(reader.Read(0, 10, 0.0).ok());
  ASSERT_TRUE(reader.Read(10, 10, 0.0).ok());
  EXPECT_EQ(reader.exchanges(), 1u);  // same cartridge, no robot trips
}

TEST_F(SpannedVolumeTest, ExchangeCostIsChargedButAmortized) {
  auto set = SpannedVolumeSet::Create(&library_, slots_);
  ASSERT_TRUE(set.ok());
  SpannedReader reader(&set.value(), &drive_);
  auto interval = reader.Read(0, set->total_blocks(), 0.0);
  ASSERT_TRUE(interval.ok());
  // Three exchanges at >= 30 s each appear in the response...
  double exchange_floor = ((3 * library_.model().exchange_seconds)).value();
  EXPECT_GT(interval->end, exchange_floor);
  // ...but transfer still dominates at realistic cartridge sizes — here the
  // tiny test cartridges make exchanges visible, which is the point: the
  // cost is charged, not assumed away.
  EXPECT_GT(interval->end, 0.0);
}

TEST_F(SpannedVolumeTest, InvalidConstructionRejected) {
  EXPECT_FALSE(SpannedVolumeSet::Create(nullptr, {0}).ok());
  EXPECT_FALSE(SpannedVolumeSet::Create(&library_, {}).ok());
  EXPECT_FALSE(SpannedVolumeSet::Create(&library_, {99}).ok());
}

}  // namespace
}  // namespace tertio::tape
