// Correctness tests: every join method must produce exactly the same join
// result (tuple count + order-independent checksum) as the in-memory
// reference join, across key distributions, selectivities and geometries.

#include <gtest/gtest.h>

#include "exec/experiment.h"
#include "exec/machine.h"
#include "join/advisor.h"
#include "join/flat_table.h"
#include "join/join_method.h"
#include "join/legacy_table.h"
#include "join/reference_join.h"
#include "relation/block.h"
#include "relation/generator.h"
#include "relation/tuple.h"
#include "tape/tape_volume.h"

namespace tertio::join {
namespace {

constexpr ByteCount kBlock = 1024;

struct Workload {
  rel::GeneratorConfig r;
  rel::GeneratorConfig s;
};

/// Small machine where all seven methods are feasible.
exec::MachineConfig SmallMachine(ByteCount disk_bytes = 64 * kBlock,
                                 ByteCount memory_bytes = 16 * kBlock) {
  exec::MachineConfig config;
  config.block_bytes = kBlock;
  config.disk_space_bytes = disk_bytes;
  config.memory_bytes = memory_bytes;
  config.stripe_unit = 4;
  return config;
}

Workload DefaultWorkload() {
  Workload w;
  w.r.name = "R";
  w.r.tuple_count = 400;  // 40 blocks at 10 tuples/block
  w.r.keys = rel::KeySequence::kSequentialUnique;
  w.r.compressibility = 0.25;
  w.r.seed = 11;
  w.s.name = "S";
  w.s.tuple_count = 2000;  // 200 blocks
  w.s.keys = rel::KeySequence::kForeignKeyUniform;
  w.s.key_domain = 400;
  w.s.compressibility = 0.25;
  w.s.seed = 12;
  return w;
}

struct RunResult {
  JoinStats stats;
  JoinOutput reference;
};

Result<RunResult> RunAndReference(const exec::MachineConfig& machine_config,
                                  const Workload& workload, JoinMethodId method) {
  exec::Machine machine(machine_config);
  RunResult result;
  rel::Relation r, s;
  TERTIO_ASSIGN_OR_RETURN(r, rel::GenerateOnTape(workload.r, &machine.tape_r()));
  TERTIO_ASSIGN_OR_RETURN(s, rel::GenerateOnTape(workload.s, &machine.tape_s()));
  machine.MountTapes();
  TERTIO_ASSIGN_OR_RETURN(result.reference, ReferenceJoin(r, s, 0, 0));
  JoinSpec spec;
  spec.r = &r;
  spec.s = &s;
  auto executor = CreateJoinMethod(method);
  join::JoinContext ctx = machine.context();
  TERTIO_ASSIGN_OR_RETURN(result.stats, executor->Execute(spec, ctx));
  return result;
}

class AllMethodsTest : public ::testing::TestWithParam<JoinMethodId> {};

TEST_P(AllMethodsTest, MatchesReferenceOnForeignKeyWorkload) {
  auto result = RunAndReference(SmallMachine(), DefaultWorkload(), GetParam());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->stats.output_valid);
  // FK-uniform S over unique R keys: every S tuple matches exactly once.
  EXPECT_EQ(result->reference.tuples(), 2000u);
  EXPECT_EQ(result->stats.output_tuples, result->reference.tuples());
  EXPECT_EQ(result->stats.output_checksum, result->reference.checksum());
}

TEST_P(AllMethodsTest, MatchesReferenceOnManyToManyWorkload) {
  Workload w = DefaultWorkload();
  w.r.keys = rel::KeySequence::kUniformRandom;  // duplicate keys on both sides
  w.r.key_domain = 120;
  w.s.key_domain = 120;
  auto result = RunAndReference(SmallMachine(), w, GetParam());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->reference.tuples(), 2000u);  // duplicates multiply matches
  EXPECT_EQ(result->stats.output_tuples, result->reference.tuples());
  EXPECT_EQ(result->stats.output_checksum, result->reference.checksum());
}

TEST_P(AllMethodsTest, MatchesReferenceOnZipfSkew) {
  Workload w = DefaultWorkload();
  w.s.keys = rel::KeySequence::kZipf;
  w.s.key_domain = 400;
  w.s.zipf_theta = 1.0;
  auto result = RunAndReference(SmallMachine(), w, GetParam());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.output_tuples, result->reference.tuples());
  EXPECT_EQ(result->stats.output_checksum, result->reference.checksum());
}

TEST_P(AllMethodsTest, MatchesReferenceOnLowSelectivity) {
  Workload w = DefaultWorkload();
  // S keys drawn from a domain 10x wider than R: ~10% of S tuples match.
  w.s.key_domain = 4000;
  auto result = RunAndReference(SmallMachine(), w, GetParam());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LT(result->reference.tuples(), 500u);
  EXPECT_GT(result->reference.tuples(), 50u);
  EXPECT_EQ(result->stats.output_tuples, result->reference.tuples());
  EXPECT_EQ(result->stats.output_checksum, result->reference.checksum());
}

TEST_P(AllMethodsTest, MatchesReferenceWhenRelationsEqualSize) {
  Workload w = DefaultWorkload();
  w.s.tuple_count = w.r.tuple_count;
  auto result = RunAndReference(SmallMachine(), w, GetParam());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->stats.output_tuples, result->reference.tuples());
  EXPECT_EQ(result->stats.output_checksum, result->reference.checksum());
}

TEST_P(AllMethodsTest, TimingInvariantsHold) {
  auto result = RunAndReference(SmallMachine(), DefaultWorkload(), GetParam());
  ASSERT_TRUE(result.ok()) << result.status();
  const JoinStats& stats = result->stats;
  EXPECT_GT(stats.response_seconds, 0.0);
  EXPECT_GE(stats.step1_seconds, 0.0);
  EXPECT_GE(stats.step2_seconds, 0.0);
  EXPECT_NEAR((stats.step1_seconds + stats.step2_seconds).value(), ((stats.response_seconds)).value(),
              stats.response_seconds.value() * 0.05 + 1e-6);
  EXPECT_GE(stats.r_scans, 1u);
  EXPECT_GE(stats.iterations, 1u);
  // Both relations are read off tape at least once.
  EXPECT_GE(stats.tape_blocks_read, 40u + 200u);
}

TEST_P(AllMethodsTest, ScratchStateRestoredAfterRun) {
  exec::Machine machine(SmallMachine());
  Workload w = DefaultWorkload();
  auto r = rel::GenerateOnTape(w.r, &machine.tape_r());
  auto s = rel::GenerateOnTape(w.s, &machine.tape_s());
  ASSERT_TRUE(r.ok() && s.ok());
  machine.MountTapes();
  BlockCount tape_r_size = machine.tape_r().size_blocks();
  BlockCount tape_s_size = machine.tape_s().size_blocks();
  JoinSpec spec;
  spec.r = &r.value();
  spec.s = &s.value();
  auto executor = CreateJoinMethod(GetParam());
  join::JoinContext ctx = machine.context();
  auto stats = executor->Execute(spec, ctx);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(machine.memory().reserved_blocks(), 0u);
  EXPECT_EQ(machine.disks().allocator().used_blocks(), 0u);
  EXPECT_EQ(machine.tape_r().size_blocks(), tape_r_size);
  EXPECT_EQ(machine.tape_s().size_blocks(), tape_s_size);
}

TEST_P(AllMethodsTest, BackToBackRunsAgree) {
  // Two consecutive runs on the same machine must produce identical results
  // and (since scratch state is restored) identical response times.
  exec::Machine machine(SmallMachine());
  Workload w = DefaultWorkload();
  auto r = rel::GenerateOnTape(w.r, &machine.tape_r());
  auto s = rel::GenerateOnTape(w.s, &machine.tape_s());
  ASSERT_TRUE(r.ok() && s.ok());
  machine.MountTapes();
  JoinSpec spec;
  spec.r = &r.value();
  spec.s = &s.value();
  auto executor = CreateJoinMethod(GetParam());
  join::JoinContext ctx = machine.context();
  auto first = executor->Execute(spec, ctx);
  ASSERT_TRUE(first.ok()) << first.status();
  // The second run pays a head locate back to the relations' start (the
  // first run found the heads parked there), so compare steady-state runs.
  auto second = executor->Execute(spec, ctx);
  ASSERT_TRUE(second.ok()) << second.status();
  auto third = executor->Execute(spec, ctx);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_EQ(first->output_checksum, second->output_checksum);
  EXPECT_EQ(second->output_checksum, third->output_checksum);
  EXPECT_NEAR((second->response_seconds).value(), ((third->response_seconds)).value(),
              second->response_seconds.value() * 0.01);
}

INSTANTIATE_TEST_SUITE_P(AllSeven, AllMethodsTest, ::testing::ValuesIn(kAllJoinMethods),
                         [](const ::testing::TestParamInfo<JoinMethodId>& info) {
                           std::string name(JoinMethodName(info.param));
                           for (char& c : name) {
                             if (c == '-' || c == '/') c = '_';
                           }
                           return name;
                         });

TEST(TapeTapeOnlyTest, TapeTapeMethodsWorkWithDiskSmallerThanR) {
  // D = 24 blocks < |R| = 40 blocks: the defining regime of Section 5.2.
  exec::MachineConfig config = SmallMachine(/*disk_bytes=*/24 * kBlock);
  for (JoinMethodId method : {JoinMethodId::kCttGh, JoinMethodId::kTtGh}) {
    auto result = RunAndReference(config, DefaultWorkload(), method);
    ASSERT_TRUE(result.ok()) << JoinMethodName(method) << ": " << result.status();
    EXPECT_EQ(result->stats.output_tuples, result->reference.tuples());
    EXPECT_EQ(result->stats.output_checksum, result->reference.checksum());
  }
}

TEST(TapeTapeOnlyTest, DiskTapeMethodsRejectDiskSmallerThanR) {
  exec::MachineConfig config = SmallMachine(/*disk_bytes=*/24 * kBlock);
  for (JoinMethodId method : {JoinMethodId::kDtNb, JoinMethodId::kCdtNbMb,
                              JoinMethodId::kCdtNbDb, JoinMethodId::kDtGh,
                              JoinMethodId::kCdtGh}) {
    auto result = RunAndReference(config, DefaultWorkload(), method);
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << JoinMethodName(method);
  }
}

TEST(ValidationTest, SwappedRelationsRejected) {
  exec::Machine machine(SmallMachine());
  Workload w = DefaultWorkload();
  auto r = rel::GenerateOnTape(w.r, &machine.tape_r());
  auto s = rel::GenerateOnTape(w.s, &machine.tape_s());
  ASSERT_TRUE(r.ok() && s.ok());
  machine.MountTapes();
  JoinSpec spec;
  spec.r = &s.value();  // swapped: |R| > |S|
  spec.s = &r.value();
  auto executor = CreateJoinMethod(JoinMethodId::kCttGh);
  join::JoinContext ctx = machine.context();
  EXPECT_FALSE(executor->Execute(spec, ctx).ok());
}

TEST(ValidationTest, UnmountedTapesRejected) {
  exec::Machine machine(SmallMachine());
  Workload w = DefaultWorkload();
  auto r = rel::GenerateOnTape(w.r, &machine.tape_r());
  auto s = rel::GenerateOnTape(w.s, &machine.tape_s());
  ASSERT_TRUE(r.ok() && s.ok());
  // Tapes never mounted.
  JoinSpec spec;
  spec.r = &r.value();
  spec.s = &s.value();
  auto executor = CreateJoinMethod(JoinMethodId::kDtNb);
  join::JoinContext ctx = machine.context();
  EXPECT_EQ(executor->Execute(spec, ctx).status().code(), StatusCode::kFailedPrecondition);
}

TEST(ValidationTest, MixedPhantomRealRejected) {
  exec::Machine machine(SmallMachine());
  Workload w = DefaultWorkload();
  w.r.phantom = true;
  auto r = rel::GenerateOnTape(w.r, &machine.tape_r());
  auto s = rel::GenerateOnTape(w.s, &machine.tape_s());
  ASSERT_TRUE(r.ok() && s.ok());
  machine.MountTapes();
  JoinSpec spec;
  spec.r = &r.value();
  spec.s = &s.value();
  auto executor = CreateJoinMethod(JoinMethodId::kDtGh);
  join::JoinContext ctx = machine.context();
  EXPECT_FALSE(executor->Execute(spec, ctx).ok());
}

TEST(ReferenceJoinTest, RejectsPhantoms) {
  exec::Machine machine(SmallMachine());
  Workload w = DefaultWorkload();
  w.r.phantom = true;
  w.s.phantom = true;
  auto r = rel::GenerateOnTape(w.r, &machine.tape_r());
  auto s = rel::GenerateOnTape(w.s, &machine.tape_s());
  ASSERT_TRUE(r.ok() && s.ok());
  EXPECT_FALSE(ReferenceJoin(r.value(), s.value(), 0, 0).ok());
}

}  // namespace
}  // namespace tertio::join

namespace tertio::join {
namespace {

TEST(SkewHandlingTest, ExtremeSkewTriggersOverflowPathButStaysCorrect) {
  // All S keys identical and one R key heavily duplicated: one bucket holds
  // far more than |R|/B blocks, forcing the overflow (bucket slicing) path.
  exec::Machine machine(SmallMachine(/*disk_bytes=*/96 * kBlock, /*memory_bytes=*/16 * kBlock));
  Workload w = DefaultWorkload();
  w.r.keys = rel::KeySequence::kUniformRandom;
  w.r.key_domain = 3;  // three keys over 400 tuples: giant buckets
  w.s.key_domain = 3;
  w.s.tuple_count = 600;
  rel::Relation r = rel::GenerateOnTape(w.r, &machine.tape_r()).value();
  rel::Relation s = rel::GenerateOnTape(w.s, &machine.tape_s()).value();
  machine.MountTapes();
  auto reference = ReferenceJoin(r, s, 0, 0);
  ASSERT_TRUE(reference.ok());
  JoinSpec spec;
  spec.r = &r;
  spec.s = &s;
  join::JoinContext ctx = machine.context();
  for (JoinMethodId method : {JoinMethodId::kDtGh, JoinMethodId::kCdtGh,
                              JoinMethodId::kCttGh}) {
    auto stats = CreateJoinMethod(method)->Execute(spec, ctx);
    ASSERT_TRUE(stats.ok()) << JoinMethodName(method) << ": " << stats.status();
    EXPECT_GT(stats->bucket_overflow_slices, 0u) << JoinMethodName(method);
    EXPECT_EQ(stats->output_tuples, reference->tuples()) << JoinMethodName(method);
    EXPECT_EQ(stats->output_checksum, reference->checksum()) << JoinMethodName(method);
  }
}

TEST(SkewHandlingTest, UniformKeysNeverOverflow) {
  auto result = RunAndReference(SmallMachine(), DefaultWorkload(), JoinMethodId::kCdtGh);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.bucket_overflow_slices, 0u);
}

// ---------------------------------------------------------------------------
// Flat open-addressing table vs the seed's multimap table
// ---------------------------------------------------------------------------

struct GeneratedBlocks {
  rel::Relation relation;
  std::vector<BlockPayload> blocks;
};

GeneratedBlocks GenerateBlocks(const rel::GeneratorConfig& config) {
  GeneratedBlocks g;
  tape::TapeVolume tape(config.name, kBlock);
  g.relation = rel::GenerateOnTape(config, &tape).value();
  for (BlockIndex i = 0; i < tape.size_blocks(); ++i) {
    g.blocks.push_back(tape.ReadBlock(i).value());
  }
  return g;
}

/// Both table substrates must emit the identical pair multiset over the
/// property-test workload generator, across key distributions.
TEST(FlatTableEquivalenceTest, MatchesLegacyMultimapOnGeneratedWorkloads) {
  struct Case {
    const char* name;
    rel::KeySequence r_keys;
    rel::KeySequence s_keys;
    std::uint64_t key_domain;
  };
  const Case cases[] = {
      {"foreign-key", rel::KeySequence::kSequentialUnique,
       rel::KeySequence::kForeignKeyUniform, 400},
      {"many-to-many", rel::KeySequence::kUniformRandom, rel::KeySequence::kUniformRandom,
       120},
      {"zipf-skew", rel::KeySequence::kSequentialUnique, rel::KeySequence::kZipf, 400},
      {"low-selectivity", rel::KeySequence::kSequentialUnique,
       rel::KeySequence::kForeignKeyUniform, 4000},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    rel::GeneratorConfig r_config;
    r_config.name = "R";
    r_config.tuple_count = 400;
    r_config.keys = c.r_keys;
    r_config.key_domain = c.key_domain;
    r_config.seed = 101;
    rel::GeneratorConfig s_config;
    s_config.name = "S";
    s_config.tuple_count = 1500;
    s_config.keys = c.s_keys;
    s_config.key_domain = c.key_domain;
    s_config.seed = 202;
    GeneratedBlocks r = GenerateBlocks(r_config);
    GeneratedBlocks s = GenerateBlocks(s_config);

    FlatJoinTable flat(&r.relation.schema, 0, /*build_is_r=*/true);
    LegacyMultimapJoinTable legacy(&r.relation.schema, 0, /*build_is_r=*/true);
    ASSERT_TRUE(flat.AddBlocks(r.blocks).ok());
    ASSERT_TRUE(legacy.AddBlocks(r.blocks).ok());
    EXPECT_EQ(flat.size(), legacy.size());

    JoinOutput flat_out, legacy_out;
    ASSERT_TRUE(flat.Probe(s.blocks, &s.relation.schema, 0, &flat_out).ok());
    ASSERT_TRUE(legacy.Probe(s.blocks, &s.relation.schema, 0, &legacy_out).ok());
    EXPECT_EQ(flat_out.tuples(), legacy_out.tuples());
    EXPECT_EQ(flat_out.checksum(), legacy_out.checksum());

    // Clear() keeps capacity but must drop every entry (the tape-tape
    // methods rebuild per bucket slice); a rebuilt table agrees again.
    flat.Clear();
    EXPECT_EQ(flat.size(), 0u);
    ASSERT_TRUE(flat.AddBlocks(r.blocks).ok());
    JoinOutput rebuilt_out;
    ASSERT_TRUE(flat.Probe(s.blocks, &s.relation.schema, 0, &rebuilt_out).ok());
    EXPECT_EQ(rebuilt_out.tuples(), legacy_out.tuples());
    EXPECT_EQ(rebuilt_out.checksum(), legacy_out.checksum());
  }
}

std::vector<BlockPayload> BlocksForKeys(const rel::Schema* schema,
                                        const std::vector<std::int64_t>& keys) {
  std::vector<BlockPayload> blocks;
  rel::BlockBuilder builder(schema, kBlock);
  rel::TupleBuilder tuple(schema);
  for (std::int64_t key : keys) {
    if (builder.full()) blocks.push_back(builder.Finish());
    tuple.SetInt64(0, key).SetFixedChar(1, "payload");
    TERTIO_CHECK(builder.Append(tuple.bytes()).ok(), "append failed");
  }
  if (builder.record_count() > 0) blocks.push_back(builder.Finish());
  return blocks;
}

std::uint64_t CollidingKeyHash(std::int64_t) { return 42; }

/// Regression: the flat table places slots by key digest and compares the
/// digest before the key bytes. With a degenerate hash that maps every key
/// to the same digest, unequal keys collide in every slot — and must still
/// never match. (hash::HashKey is a bijection, so a real collision cannot be
/// constructed without injecting the hash.)
TEST(FlatTableDigestCollision, UnequalKeysWithEqualDigestsDoNotMatch) {
  rel::Schema schema = rel::Schema::KeyPayload(100);
  std::vector<std::int64_t> build_keys;
  for (std::int64_t k = 0; k < 64; ++k) build_keys.push_back(k);
  std::vector<BlockPayload> build = BlocksForKeys(&schema, build_keys);

  FlatJoinTable colliding(&schema, 0, /*build_is_r=*/true, /*capture_records=*/false,
                          &CollidingKeyHash);
  ASSERT_TRUE(colliding.AddBlocks(build).ok());
  ASSERT_EQ(colliding.size(), build_keys.size());

  // Absent keys share the digest of every stored key; none may match.
  JoinOutput miss_out;
  std::vector<BlockPayload> misses = BlocksForKeys(&schema, {64, 100, -1, 1 << 20});
  ASSERT_TRUE(colliding.Probe(misses, &schema, 0, &miss_out).ok());
  EXPECT_EQ(miss_out.tuples(), 0u);

  // Present keys must still match exactly once each, and produce the same
  // pair set as a table using the production hash.
  std::vector<std::int64_t> probe_keys = {0, 7, 63, 31};
  std::vector<BlockPayload> hits = BlocksForKeys(&schema, probe_keys);
  JoinOutput collide_out, production_out;
  ASSERT_TRUE(colliding.Probe(hits, &schema, 0, &collide_out).ok());
  FlatJoinTable production(&schema, 0, /*build_is_r=*/true);
  ASSERT_TRUE(production.AddBlocks(build).ok());
  ASSERT_TRUE(production.Probe(hits, &schema, 0, &production_out).ok());
  EXPECT_EQ(collide_out.tuples(), probe_keys.size());
  EXPECT_EQ(collide_out.tuples(), production_out.tuples());
  EXPECT_EQ(collide_out.checksum(), production_out.checksum());
}

}  // namespace
}  // namespace tertio::join
