// SimSan (sim/auditor.h) tests.
//
// Positive: every join method at paper parameters runs audit-clean with a
// nonzero check count, auditing never perturbs simulated time, and the
// horizon cache stays coherent across resets. Negative: each invariant
// class is seeded with a violation — through the real pipeline where
// practical, through the hooks directly otherwise — and must be detected
// with a replayable diagnostic. The negative tests bind a standalone
// Auditor (never a Simulation's own), so they run identically in
// TERTIO_SIMSAN builds, where an unclean Simulation aborts at destruction.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/experiment.h"
#include "exec/machine.h"
#include "join/join_common.h"
#include "join/join_method.h"
#include "sim/auditor.h"
#include "sim/pipeline.h"
#include "sim/simulation.h"
#include "sim/span_registry.h"

namespace tertio::sim {
namespace {

static_assert(IsRegisteredSpan("probe"));
static_assert(IsRegisteredSpan("stage:tape-read"));
static_assert(!IsRegisteredSpan("no-such-phase"));
static_assert(!IsRegisteredSpan(""));

bool HasKind(const Auditor& auditor, AuditKind kind) {
  for (const AuditViolation& v : auditor.violations()) {
    if (v.kind == kind) return true;
  }
  return false;
}

TEST(SimSanPositiveTest, AllSevenMethodsAuditCleanAtPaperParameters) {
  for (JoinMethodId method : kAllJoinMethods) {
    // Experiment-3 parameters: |S| = 1000 MB, |R| = 18 MB, D = 50 MB,
    // M = 0.3|R| — every method in Table 2 is feasible here.
    exec::MachineConfig config = exec::MachineConfig::PaperTestbed(50 * kMB, 5400 * kKB);
    exec::Machine machine(config);
    Auditor* auditor = machine.EnableAudit();
    ASSERT_NE(auditor, nullptr) << JoinMethodName(method);
    exec::WorkloadConfig workload;
    workload.r_bytes = 18 * kMB;
    workload.s_bytes = 1000 * kMB;
    workload.phantom = true;
    auto prepared = exec::PrepareWorkload(&machine, workload);
    ASSERT_TRUE(prepared.ok()) << prepared.status();
    join::JoinSpec spec;
    spec.r = &prepared->r;
    spec.s = &prepared->s;
    join::JoinContext ctx = machine.context();
    auto stats = join::CreateJoinMethod(method)->Execute(spec, ctx);
    ASSERT_TRUE(stats.ok()) << JoinMethodName(method) << ": " << stats.status();
    EXPECT_GT(auditor->checks_performed(), 0u)
        << JoinMethodName(method) << ": auditor was never consulted";
    EXPECT_TRUE(auditor->clean()) << JoinMethodName(method) << ":\n"
                                  << auditor->TraceString();
    EXPECT_TRUE(auditor->Check().ok()) << JoinMethodName(method);
  }
}

TEST(SimSanPositiveTest, AuditingNeverPerturbsSimulatedTime) {
  // The acceptance bar: simulated join times are bit-identical with the
  // auditor on or off. (In TERTIO_SIMSAN builds both runs are audited and
  // the comparison is trivially true; the default tier-1 build exercises
  // the audited-vs-unaudited pair.)
  auto run = [](bool audited) {
    exec::MachineConfig config = exec::MachineConfig::PaperTestbed(30 * kMB, 2 * kMB);
    exec::Machine machine(config);
    if (audited) machine.EnableAudit();
    exec::WorkloadConfig workload;
    workload.r_bytes = 10 * kMB;
    workload.s_bytes = 100 * kMB;
    workload.phantom = true;
    auto prepared = exec::PrepareWorkload(&machine, workload);
    TERTIO_CHECK(prepared.ok(), "setup failed");
    join::JoinSpec spec;
    spec.r = &prepared->r;
    spec.s = &prepared->s;
    join::JoinContext ctx = machine.context();
    auto stats = join::CreateJoinMethod(JoinMethodId::kCttGh)->Execute(spec, ctx);
    TERTIO_CHECK(stats.ok(), stats.status().ToString());
    return stats.value();
  };
  join::JoinStats plain = run(false);
  join::JoinStats audited = run(true);
  EXPECT_EQ(plain.response_seconds, audited.response_seconds);  // exact, not near
  EXPECT_EQ(plain.step1_seconds, audited.step1_seconds);
  EXPECT_EQ(plain.tape_blocks_read, audited.tape_blocks_read);
  EXPECT_EQ(plain.disk_blocks_written, audited.disk_blocks_written);
}

// The PR-5 acceptance bar: with transfer coalescing on or off, every join
// method reports bit-identical simulated time and span aggregates, and both
// runs audit clean. (Coalescing on is the default; off forces the reference
// per-chunk path.)
TEST(SimSanCoalesceTest, AllSevenMethodsAreBitIdenticalWithCoalescingOnOrOff) {
  for (JoinMethodId method : kAllJoinMethods) {
    auto run = [&](bool coalesce) {
      exec::MachineConfig config = exec::MachineConfig::PaperTestbed(50 * kMB, 5400 * kKB);
      exec::Machine machine(config);
      Auditor* auditor = machine.EnableAudit();
      TERTIO_CHECK(auditor != nullptr, "audit must bind");
      exec::WorkloadConfig workload;
      workload.r_bytes = 18 * kMB;
      workload.s_bytes = 1000 * kMB;
      workload.phantom = true;
      auto prepared = exec::PrepareWorkload(&machine, workload);
      TERTIO_CHECK(prepared.ok(), "setup failed");
      join::JoinSpec spec;
      spec.r = &prepared->r;
      spec.s = &prepared->s;
      join::JoinContext ctx = machine.context();
      ctx.coalesce_transfers = coalesce;
      auto stats = join::CreateJoinMethod(method)->Execute(spec, ctx);
      TERTIO_CHECK(stats.ok(), stats.status().ToString());
      TERTIO_CHECK(auditor->clean(), auditor->TraceString());
      return stats.value();
    };
    join::JoinStats on = run(true);
    join::JoinStats off = run(false);
    // Exact comparisons: the claim is bit-identity, not tolerance agreement.
    EXPECT_EQ(on.response_seconds, off.response_seconds) << JoinMethodName(method);
    EXPECT_EQ(on.step1_seconds, off.step1_seconds) << JoinMethodName(method);
    EXPECT_EQ(on.step2_seconds, off.step2_seconds) << JoinMethodName(method);
    EXPECT_EQ(on.tape_blocks_read, off.tape_blocks_read) << JoinMethodName(method);
    EXPECT_EQ(on.tape_blocks_written, off.tape_blocks_written) << JoinMethodName(method);
    EXPECT_EQ(on.disk_blocks_read, off.disk_blocks_read) << JoinMethodName(method);
    EXPECT_EQ(on.disk_blocks_written, off.disk_blocks_written) << JoinMethodName(method);
    EXPECT_EQ(on.disk_requests, off.disk_requests) << JoinMethodName(method);
    EXPECT_EQ(on.peak_memory_blocks, off.peak_memory_blocks) << JoinMethodName(method);
    EXPECT_EQ(on.peak_disk_blocks, off.peak_disk_blocks) << JoinMethodName(method);
    ASSERT_EQ(on.spans.phases().size(), off.spans.phases().size()) << JoinMethodName(method);
    for (std::size_t i = 0; i < on.spans.phases().size(); ++i) {
      const PhaseSummary& a = on.spans.phases()[i];
      const PhaseSummary& b = off.spans.phases()[i];
      SCOPED_TRACE(std::string(JoinMethodName(method)) + " phase " + a.phase);
      EXPECT_EQ(a.phase, b.phase);
      EXPECT_EQ(a.device, b.device);
      EXPECT_EQ(a.stage_count, b.stage_count);
      EXPECT_EQ(a.blocks, b.blocks);
      EXPECT_EQ(a.bytes, b.bytes);
      EXPECT_EQ(a.busy_seconds, b.busy_seconds);
      EXPECT_EQ(a.window.start, b.window.start);
      EXPECT_EQ(a.window.end, b.window.end);
    }
  }
}

// The PR-8 acceptance bar: the three transfer-commit paths — per-chunk
// (coalescing off), O(chunks) replay (coalescing on, closed-form off), and
// O(1) closed-form (both on, the default) — report bit-identical simulated
// time and span aggregates for every join method, and all three runs audit
// clean. Exact comparisons throughout: the claim is bit-identity of the
// floating-point results, not tolerance agreement.
TEST(SimSanCoalesceTest, AllSevenMethodsAreBitIdenticalAcrossCommitPaths) {
  for (JoinMethodId method : kAllJoinMethods) {
    auto run = [&](bool coalesce, bool closed_form) {
      exec::MachineConfig config = exec::MachineConfig::PaperTestbed(50 * kMB, 5400 * kKB);
      exec::Machine machine(config);
      Auditor* auditor = machine.EnableAudit();
      TERTIO_CHECK(auditor != nullptr, "audit must bind");
      exec::WorkloadConfig workload;
      workload.r_bytes = 18 * kMB;
      workload.s_bytes = 1000 * kMB;
      workload.phantom = true;
      auto prepared = exec::PrepareWorkload(&machine, workload);
      TERTIO_CHECK(prepared.ok(), "setup failed");
      join::JoinSpec spec;
      spec.r = &prepared->r;
      spec.s = &prepared->s;
      join::JoinContext ctx = machine.context();
      ctx.coalesce_transfers = coalesce;
      ctx.closed_form_commit = closed_form;
      auto stats = join::CreateJoinMethod(method)->Execute(spec, ctx);
      TERTIO_CHECK(stats.ok(), stats.status().ToString());
      TERTIO_CHECK(auditor->clean(), auditor->TraceString());
      return stats.value();
    };
    const join::JoinStats per_chunk = run(false, false);
    const join::JoinStats replay = run(true, false);
    const join::JoinStats closed = run(true, true);
    for (const join::JoinStats* other : {&replay, &closed}) {
      const char* path = other == &replay ? " [replay]" : " [closed-form]";
      SCOPED_TRACE(std::string(JoinMethodName(method)) + path);
      EXPECT_EQ(per_chunk.response_seconds, other->response_seconds);
      EXPECT_EQ(per_chunk.step1_seconds, other->step1_seconds);
      EXPECT_EQ(per_chunk.step2_seconds, other->step2_seconds);
      EXPECT_EQ(per_chunk.tape_blocks_read, other->tape_blocks_read);
      EXPECT_EQ(per_chunk.tape_blocks_written, other->tape_blocks_written);
      EXPECT_EQ(per_chunk.disk_blocks_read, other->disk_blocks_read);
      EXPECT_EQ(per_chunk.disk_blocks_written, other->disk_blocks_written);
      EXPECT_EQ(per_chunk.disk_requests, other->disk_requests);
      EXPECT_EQ(per_chunk.peak_memory_blocks, other->peak_memory_blocks);
      EXPECT_EQ(per_chunk.peak_disk_blocks, other->peak_disk_blocks);
      ASSERT_EQ(per_chunk.spans.phases().size(), other->spans.phases().size());
      for (std::size_t i = 0; i < per_chunk.spans.phases().size(); ++i) {
        const PhaseSummary& a = per_chunk.spans.phases()[i];
        const PhaseSummary& b = other->spans.phases()[i];
        SCOPED_TRACE("phase " + a.phase);
        EXPECT_EQ(a.phase, b.phase);
        EXPECT_EQ(a.device, b.device);
        EXPECT_EQ(a.stage_count, b.stage_count);
        EXPECT_EQ(a.blocks, b.blocks);
        EXPECT_EQ(a.bytes, b.bytes);
        EXPECT_EQ(a.busy_seconds, b.busy_seconds);
        EXPECT_EQ(a.window.start, b.window.start);
        EXPECT_EQ(a.window.end, b.window.end);
      }
    }
  }
}

// Engagement, not just equivalence: on the real machine the shared transfer
// helpers (tape-to-disk staging, disk scan-and-probe) must actually reach
// the coalesced path for nearly every chunk after the per-chunk warm-up.
TEST(SimSanCoalesceTest, SharedTransferHelpersEngageTheCoalescedPath) {
  exec::MachineConfig config = exec::MachineConfig::PaperTestbed(50 * kMB, 5400 * kKB);
  exec::Machine machine(config);
  Auditor* auditor = machine.EnableAudit();
  ASSERT_NE(auditor, nullptr);
  exec::WorkloadConfig workload;
  workload.r_bytes = 18 * kMB;
  workload.s_bytes = 100 * kMB;
  workload.phantom = true;
  auto prepared = exec::PrepareWorkload(&machine, workload);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  join::JoinContext ctx = machine.context();

  Pipeline pipe(ctx.sim->Horizon(), nullptr, ctx.sim->auditor());
  BlockCount chunk = join::DefaultTapeChunk(prepared->r);
  auto staged = join::StageRelationToDisk(ctx, pipe, ctx.drive_r, prepared->r, chunk,
                                          /*concurrent=*/true, "engage-r", {});
  ASSERT_TRUE(staged.ok()) << staged.status();
  std::uint64_t after_staging = pipe.coalesced_chunks();
  // The first chunk warms up per-chunk (tape locate, first disk seek);
  // the steady state coalesces the rest.
  BlockCount total_chunks = prepared->r.blocks / chunk;
  EXPECT_GE(after_staging, total_chunks / 2);

  auto scan = join::ScanDiskAndProbe(ctx, pipe, "r-scan", staged->extents, chunk,
                                     {staged->done_stage}, /*phantom=*/true, nullptr, 0,
                                     nullptr, nullptr);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_GT(pipe.coalesced_chunks(), after_staging);
  EXPECT_TRUE(auditor->clean()) << auditor->TraceString();
}

TEST(SimSanPositiveTest, HorizonStaysCoherentAcrossIndividualResets) {
  // The Reset() footgun SimSan guards: resetting one resource must not
  // leave the O(1) horizon cache serving the dead timeline's maximum.
  Simulation sim;
  sim.EnableAudit();
  Resource* slow = sim.CreateResource("slow");
  Resource* fast = sim.CreateResource("fast");
  slow->Schedule(0.0, 10.0);
  fast->Schedule(0.0, 5.0);
  EXPECT_EQ(sim.Horizon(), 10.0);
  slow->Reset();
  EXPECT_EQ(sim.Horizon(), 5.0);  // recomputed, not the stale 10.0
  sim.AuditHorizon();
  slow->Schedule(0.0, 2.0);
  EXPECT_EQ(sim.Horizon(), 5.0);
  sim.AuditHorizon();
  sim.Reset();
  EXPECT_EQ(sim.Horizon(), 0.0);
  sim.AuditHorizon();
  EXPECT_TRUE(sim.auditor()->clean()) << sim.auditor()->TraceString();
  EXPECT_GT(sim.auditor()->checks_performed(), 0u);
}

TEST(SimSanPositiveTest, ResourceResetRestartsTheExclusivityTimeline) {
  Auditor auditor;
  auditor.OnSchedule("drive", 0.0, Interval{0.0, 8.0}, 0);
  auditor.OnResourceReset("drive");
  // After a reset the timeline legitimately starts over at zero.
  auditor.OnSchedule("drive", 0.0, Interval{0.0, 1.0}, 0);
  EXPECT_TRUE(auditor.clean()) << auditor.TraceString();
}

TEST(SimSanNegativeTest, DetectsIntervalOverlap) {
  Auditor auditor;
  auditor.OnSchedule("tapeR", 0.0, Interval{0.0, 5.0}, 0);
  auditor.OnSchedule("tapeR", 0.0, Interval{4.0, 6.0}, 0);  // starts inside [0,5)
  EXPECT_FALSE(auditor.clean());
  EXPECT_TRUE(HasKind(auditor, AuditKind::kIntervalOverlap));
  // The diagnostic replays both offending intervals.
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_GE(auditor.violations()[0].intervals.size(), 2u);
}

TEST(SimSanNegativeTest, DetectsTimeRegression) {
  Auditor auditor;
  auditor.OnSchedule("disk0", 3.0, Interval{5.0, 4.0}, 0);  // ends before it starts
  EXPECT_TRUE(HasKind(auditor, AuditKind::kTimeRegression));
  Auditor early;
  early.OnSchedule("disk0", 3.0, Interval{2.0, 6.0}, 0);  // starts before ready
  EXPECT_TRUE(HasKind(early, AuditKind::kTimeRegression));
}

// A BlockSource that claims to have finished before it was allowed to start
// — the class of bug a miswired device model would introduce.
class TimeTravelSource final : public BlockSource {
 public:
  Result<Interval> Read(BlockCount offset, BlockCount count, SimSeconds ready,
                        std::vector<BlockPayload>* out) override {
    (void)offset;
    (void)count;
    (void)out;
    return Interval{ready - 2.0, ready - 1.0};
  }
  std::string_view device() const override { return "evil"; }
};

TEST(SimSanNegativeTest, DetectsCausalityBreakThroughRealTransfer) {
  Auditor auditor;
  Pipeline pipe(/*start=*/5.0, /*trace=*/nullptr, &auditor);
  TimeTravelSource source;
  CollectSink sink(nullptr);
  Pipeline::TransferPlan plan;
  plan.read_phase = "s-read";
  plan.write_phase = "probe";
  plan.total = 4;
  plan.chunk = 2;
  auto result = pipe.Transfer(plan, source, sink);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(auditor.clean());
  EXPECT_TRUE(HasKind(auditor, AuditKind::kCausality));
  // The conservation ledger itself balances: the source lied about time,
  // not about block counts.
  EXPECT_FALSE(HasKind(auditor, AuditKind::kByteConservation));
}

TEST(SimSanNegativeTest, DetectsBufferOvercommit) {
  Auditor auditor;
  auditor.OnMemoryReserve("hash-table", 20, /*reserved_after=*/120, /*total=*/100);
  EXPECT_TRUE(HasKind(auditor, AuditKind::kBufferOvercommit));
}

TEST(SimSanNegativeTest, DetectsScratchOvercommit) {
  Auditor disk_auditor;
  disk_auditor.OnDiskUsage("stage-r", 1.5, /*used_after=*/501, /*capacity=*/500);
  EXPECT_TRUE(HasKind(disk_auditor, AuditKind::kScratchOvercommit));
  Auditor tape_auditor;
  tape_auditor.OnTapeOccupancy("scratchR", /*size_after=*/1001, /*capacity=*/1000);
  EXPECT_TRUE(HasKind(tape_auditor, AuditKind::kScratchOvercommit));
  // Capacity 0 means unbounded: no violation however large the volume.
  Auditor unbounded;
  unbounded.OnTapeOccupancy("archive", 1'000'000, 0);
  EXPECT_TRUE(unbounded.clean());
}

TEST(SimSanNegativeTest, DetectsByteConservationBreak) {
  Auditor short_delivery;
  short_delivery.OnTransferEnd("r-scan", /*expected=*/64, /*completed=*/63, /*issued=*/63,
                               /*dropped=*/0);
  EXPECT_TRUE(HasKind(short_delivery, AuditKind::kByteConservation));
  Auditor leaky_ledger;
  leaky_ledger.OnTransferEnd("r-scan", 64, 64, /*issued=*/70, /*dropped=*/2);  // 70 != 64+2
  EXPECT_TRUE(HasKind(leaky_ledger, AuditKind::kByteConservation));
  Auditor with_retries;
  with_retries.OnTransferEnd("r-scan", 64, 64, /*issued=*/66, /*dropped=*/2);  // balances
  EXPECT_TRUE(with_retries.clean());
}

TEST(SimSanNegativeTest, DetectsHorizonIncoherence) {
  Auditor auditor;
  auditor.OnHorizonCheck(/*cached=*/10.0, /*recomputed=*/7.5);
  EXPECT_TRUE(HasKind(auditor, AuditKind::kHorizonIncoherence));
}

TEST(SimSanNegativeTest, DetectsAccountingBreaks) {
  Auditor over_release;
  over_release.OnMemoryRelease("ring", /*released=*/8, /*held_under_tag=*/5);
  EXPECT_TRUE(HasKind(over_release, AuditKind::kAccounting));
  Auditor over_free;
  over_free.OnDiskOverfree("stage-s", "freed extent [10, 20) that was never allocated");
  EXPECT_TRUE(HasKind(over_free, AuditKind::kAccounting));
}

TEST(SimSanNegativeTest, DetectsUnregisteredSpan) {
  Auditor auditor;
  auditor.OnStage("probee" /* typo'd "probe" */, "disks", 0.0, 0.0, Interval{0.0, 1.0});
  EXPECT_TRUE(HasKind(auditor, AuditKind::kUnregisteredSpan));
}

TEST(SimSanDiagnosticTest, CheckCarriesReplayableTrace) {
  Auditor auditor;
  auditor.OnSchedule("tapeS", 0.0, Interval{0.0, 5.0}, 0);
  auditor.OnSchedule("tapeS", 0.0, Interval{3.0, 7.0}, 0);
  Status status = auditor.Check();
  ASSERT_FALSE(status.ok());
  const std::string message(status.message());
  EXPECT_NE(message.find("SimSan"), std::string::npos);
  EXPECT_NE(message.find("IntervalOverlap"), std::string::npos);
  EXPECT_NE(message.find("tapeS"), std::string::npos);
  EXPECT_NE(message.find("replay:"), std::string::npos);
  // The offending intervals appear with enough precision to replay exactly.
  EXPECT_NE(message.find("[3.000000000, 7.000000000)"), std::string::npos);
}

TEST(SimSanDiagnosticTest, ClearForgetsEverything) {
  Auditor auditor;
  auditor.OnSchedule("r", 0.0, Interval{0.0, 5.0}, 0);
  auditor.OnSchedule("r", 0.0, Interval{1.0, 2.0}, 0);
  ASSERT_FALSE(auditor.clean());
  auditor.Clear();
  EXPECT_TRUE(auditor.clean());
  EXPECT_EQ(auditor.checks_performed(), 0u);
  // And the per-resource timeline restarts, too.
  auditor.OnSchedule("r", 0.0, Interval{0.0, 1.0}, 0);
  EXPECT_TRUE(auditor.clean());
}

TEST(SimSanDiagnosticTest, ViolationCapReportsDrops) {
  Auditor auditor;
  for (int i = 0; i < 100; ++i) {
    auditor.OnHorizonCheck(1.0, 2.0);
  }
  EXPECT_EQ(auditor.violations().size(), 64u);
  EXPECT_NE(auditor.TraceString().find("dropped"), std::string::npos);
}

}  // namespace
}  // namespace tertio::sim
