// Unit tests for tertio_cost: formula sanity, Table 2 resource shapes,
// feasibility boundaries, and the Section 5.3 figure properties.

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "cost/method_id.h"
#include "tape/tape_model.h"

namespace tertio::cost {
namespace {

/// Section 5.3's configuration: |S| = 10|R|, D = 32M, X_D = 2X_T.
CostParams Section53Params(double r_over_m, BlockCount m = 2000) {
  CostParams p;
  p.memory_blocks = m;
  p.r_blocks = static_cast<BlockCount>(r_over_m * static_cast<double>(m.value()));
  p.s_blocks = 10 * p.r_blocks;
  p.disk_blocks = 32 * m;
  p.tape_rate_bps = 1.5e6;
  p.disk_rate_bps = 3.0e6;
  p.disk_positioning_seconds = 0.0;
  return p;
}

TEST(MethodIdTest, NamesAndPredicates) {
  EXPECT_EQ(JoinMethodName(JoinMethodId::kCdtNbMb), "CDT-NB/MB");
  EXPECT_EQ(JoinMethodName(JoinMethodId::kCttGh), "CTT-GH");
  EXPECT_TRUE(IsConcurrentMethod(JoinMethodId::kCdtGh));
  EXPECT_FALSE(IsConcurrentMethod(JoinMethodId::kTtGh));
  EXPECT_TRUE(IsDiskTapeMethod(JoinMethodId::kDtNb));
  EXPECT_FALSE(IsDiskTapeMethod(JoinMethodId::kCttGh));
  EXPECT_TRUE(IsHashMethod(JoinMethodId::kDtGh));
  EXPECT_FALSE(IsHashMethod(JoinMethodId::kCdtNbDb));
}

TEST(CostModelTest, AllMethodsFeasibleInComfortableConfig) {
  CostParams p = Section53Params(2.0);
  for (JoinMethodId method : kAllJoinMethods) {
    auto estimate = Estimate(method, p);
    ASSERT_TRUE(estimate.ok()) << JoinMethodName(method) << ": " << estimate.status();
    EXPECT_GT(estimate->total_seconds, 0.0) << JoinMethodName(method);
    EXPECT_NEAR((estimate->step1_seconds + estimate->step2_seconds).value(), (estimate->total_seconds).value(),
                1e-9);
    // Any method must at least read both relations once.
    EXPECT_GE(estimate->total_seconds, OptimumJoinSeconds(p)) << JoinMethodName(method);
  }
}

TEST(CostModelTest, InvalidParamsRejected) {
  CostParams p = Section53Params(2.0);
  p.r_blocks = 0;
  EXPECT_FALSE(Estimate(JoinMethodId::kDtNb, p).ok());
  p = Section53Params(2.0);
  p.r_blocks = p.s_blocks + 1;
  EXPECT_FALSE(Estimate(JoinMethodId::kDtNb, p).ok());
  p = Section53Params(2.0);
  p.memory_blocks = 0;
  EXPECT_FALSE(Estimate(JoinMethodId::kDtNb, p).ok());
  p = Section53Params(2.0);
  p.tape_rate_bps = 0.0;
  EXPECT_FALSE(Estimate(JoinMethodId::kDtNb, p).ok());
}

TEST(CostModelTest, DiskTapeMethodsInfeasibleBeyondDisk) {
  // |R| > D: only the tape-tape methods remain (Figure 3's regime).
  CostParams p = Section53Params(50.0);
  ASSERT_GT(p.r_blocks, p.disk_blocks);
  for (JoinMethodId method :
       {JoinMethodId::kDtNb, JoinMethodId::kCdtNbMb, JoinMethodId::kCdtNbDb,
        JoinMethodId::kDtGh, JoinMethodId::kCdtGh}) {
    EXPECT_EQ(Estimate(method, p).status().code(), StatusCode::kResourceExhausted)
        << JoinMethodName(method);
  }
  EXPECT_TRUE(Estimate(JoinMethodId::kCttGh, p).ok());
  EXPECT_TRUE(Estimate(JoinMethodId::kTtGh, p).ok());
}

TEST(CostModelTest, ConcurrentVariantsNeverSlower) {
  for (double x : {1.0, 2.0, 5.0, 10.0, 20.0}) {
    CostParams p = Section53Params(x);
    auto dt_nb = Estimate(JoinMethodId::kDtNb, p);
    auto db = Estimate(JoinMethodId::kCdtNbDb, p);
    auto dt_gh = Estimate(JoinMethodId::kDtGh, p);
    auto cdt_gh = Estimate(JoinMethodId::kCdtGh, p);
    if (dt_nb.ok() && db.ok()) {
      // CDT-NB/DB routes S through disk, so at |R| ~ M its extra disk passes
      // can slightly outweigh the overlap (visible in Figure 1 as well).
      EXPECT_LE(db->total_seconds, dt_nb->total_seconds * 1.15) << "x=" << x;
    }
    if (dt_gh.ok() && cdt_gh.ok()) {
      EXPECT_LE(cdt_gh->total_seconds, dt_gh->total_seconds * 1.01) << "x=" << x;
    }
  }
}

TEST(CostModelTest, Figure1Shape_NbRisesHashFlat) {
  auto at = [&](JoinMethodId m, double x) {
    return Estimate(m, Section53Params(x)).value().total_seconds /
           OptimumJoinSeconds(Section53Params(x));
  };
  // NB methods rise steeply with |R|/M (iteration count ~ |R|/M).
  EXPECT_GT(at(JoinMethodId::kDtNb, 5.0), 1.8 * at(JoinMethodId::kDtNb, 1.0));
  EXPECT_GT(at(JoinMethodId::kCdtNbMb, 5.0), 2.5 * at(JoinMethodId::kCdtNbMb, 1.0));
  // Hash methods stay within a narrow band over the same range.
  EXPECT_LT(at(JoinMethodId::kDtGh, 5.0), 1.25 * at(JoinMethodId::kDtGh, 1.0));
  EXPECT_LT(at(JoinMethodId::kCttGh, 5.0), 2.0 * at(JoinMethodId::kCttGh, 1.0));
}

TEST(CostModelTest, Figure2Shape_DiskTapeHashExplodesNearD) {
  // As |R| -> D = 32M the S buffer shrinks and iteration counts soar.
  auto comfortable = Estimate(JoinMethodId::kCdtGh, Section53Params(16.0));
  auto squeezed = Estimate(JoinMethodId::kCdtGh, Section53Params(31.5));
  ASSERT_TRUE(comfortable.ok() && squeezed.ok());
  EXPECT_GT(squeezed->total_seconds, 3.0 * comfortable->total_seconds);
  // CTT-GH is "largely unaffected by the increased size of R".
  auto ctt_a = Estimate(JoinMethodId::kCttGh, Section53Params(16.0));
  auto ctt_b = Estimate(JoinMethodId::kCttGh, Section53Params(31.5));
  ASSERT_TRUE(ctt_a.ok() && ctt_b.ok());
  EXPECT_LT(ctt_b->total_seconds, 2.5 * ctt_a->total_seconds);
}

TEST(CostModelTest, Figure3Shape_CttScalesTtDoesNot) {
  auto opt = [](double x) { return OptimumJoinSeconds(Section53Params(x)); };
  auto ctt = Estimate(JoinMethodId::kCttGh, Section53Params(150.0));
  auto tt = Estimate(JoinMethodId::kTtGh, Section53Params(150.0));
  ASSERT_TRUE(ctt.ok() && tt.ok());
  EXPECT_LT(ctt->total_seconds / opt(150.0), 8.0);   // graceful
  EXPECT_GT(tt->total_seconds / opt(150.0), 20.0);   // setup cost explodes
  EXPECT_GT(tt->total_seconds, 3.0 * ctt->total_seconds);
}

TEST(CostModelTest, TtGhStepTwoIsParallelTapeStreams) {
  CostParams p = Section53Params(2.0);
  auto tt = Estimate(JoinMethodId::kTtGh, p);
  ASSERT_TRUE(tt.ok());
  // Step II streams both hashed tapes in parallel: max, not sum.
  double expected = static_cast<double>(p.s_blocks.value()) * static_cast<double>(p.block_bytes.value()) /
      p.tape_rate_bps.value();
  EXPECT_NEAR((tt->step2_seconds).value(), expected, expected * 0.01);
}

TEST(CostModelTest, Table2ResourceShapes) {
  CostParams p = Section53Params(4.0);
  auto dt_nb = Estimate(JoinMethodId::kDtNb, p).value();
  auto db = Estimate(JoinMethodId::kCdtNbDb, p).value();
  auto dt_gh = Estimate(JoinMethodId::kDtGh, p).value();
  auto ctt = Estimate(JoinMethodId::kCttGh, p).value();
  auto tt = Estimate(JoinMethodId::kTtGh, p).value();
  // DT-NB needs exactly |R| of disk; CDT-NB/DB adds the S chunk.
  EXPECT_EQ(dt_nb.disk_space_blocks, p.r_blocks);
  EXPECT_GT(db.disk_space_blocks, p.r_blocks);
  // Grace disk-tape methods use all of D.
  EXPECT_EQ(dt_gh.disk_space_blocks, p.disk_blocks);
  // Tape-tape methods need tape scratch: CTT-GH |R| on tape R; TT-GH
  // crosses: |S| on tape R, |R| on tape S.
  EXPECT_EQ(ctt.tape_scratch_r_blocks, p.r_blocks);
  EXPECT_EQ(ctt.tape_scratch_s_blocks, 0u);
  EXPECT_EQ(tt.tape_scratch_r_blocks, p.s_blocks);
  EXPECT_EQ(tt.tape_scratch_s_blocks, p.r_blocks);
  // Memory: hash methods need ~sqrt(|R|), NB methods only a few blocks.
  EXPECT_LT(dt_nb.memory_required_blocks, 4u);
  EXPECT_GT(dt_gh.memory_required_blocks, 100u);
}

TEST(CostModelTest, Figure7Property_GraceTrafficIndependentOfMemory) {
  CostParams small = Section53Params(4.0, 1000);
  CostParams large = small;
  large.memory_blocks = 4000;  // same |R|, more memory
  small.r_blocks = large.r_blocks = 4000;
  small.s_blocks = large.s_blocks = 40000;
  auto t_small = Estimate(JoinMethodId::kDtGh, small);
  auto t_large = Estimate(JoinMethodId::kDtGh, large);
  ASSERT_TRUE(t_small.ok() && t_large.ok());
  EXPECT_EQ(t_small->disk_traffic_blocks, t_large->disk_traffic_blocks);
  // NB traffic falls with memory (fewer iterations).
  auto nb_small = Estimate(JoinMethodId::kDtNb, small);
  auto nb_large = Estimate(JoinMethodId::kDtNb, large);
  ASSERT_TRUE(nb_small.ok() && nb_large.ok());
  EXPECT_GT(nb_small->disk_traffic_blocks, nb_large->disk_traffic_blocks);
}

TEST(CostModelTest, FasterTapeLeavesConcurrentResponseUnchanged) {
  // Section 9: concurrent methods are disk-bound, so tape speed moves the
  // optimum but not the response.
  CostParams base;
  base.r_blocks = 2304;   // 18 MB in 8 KiB blocks
  base.s_blocks = 128000; // 1,000 MB
  base.memory_blocks = 230;
  base.disk_blocks = 6400;
  base.tape_rate_bps = 1.5e6;
  base.disk_rate_bps = 8.4e6;
  base.disk_positioning_seconds = 0.0145;
  CostParams fast = base;
  fast.tape_rate_bps = 3.0e6;
  auto slow_est = Estimate(JoinMethodId::kCdtGh, base);
  auto fast_est = Estimate(JoinMethodId::kCdtGh, fast);
  ASSERT_TRUE(slow_est.ok() && fast_est.ok());
  // Disk-bound: response barely changes...
  EXPECT_NEAR((fast_est->total_seconds).value(), (slow_est->total_seconds).value(),
              slow_est->total_seconds.value() * 0.15);
  // ...while the optimum halves, so overhead rises.
  EXPECT_GT(RelativeJoinOverhead(fast_est->total_seconds, fast),
            RelativeJoinOverhead(slow_est->total_seconds, base));
}

TEST(CostModelTest, OptimumAndOverhead) {
  CostParams p = Section53Params(2.0);
  double optimum = OptimumJoinSeconds(p).value();
  EXPECT_NEAR(optimum,
              static_cast<double>(p.s_blocks.value()) * static_cast<double>(p.block_bytes.value()) /
                  p.tape_rate_bps.value(),
              1e-9);
  EXPECT_NEAR(RelativeJoinOverhead(optimum * 1.3, p), 0.3, 1e-9);
  EXPECT_NEAR(RelativeJoinOverhead(optimum, p), 0.0, 1e-9);
}

TEST(CostModelTest, MediaExchangeIsNegligibleAtScale) {
  // Section 3.2's claim, checked: a 30 s media exchange against the transfer
  // time of a full 20 GB cartridge is < 1%.
  tape::TapeDriveModel drive = tape::TapeDriveModel::DLT4000();
  double full_read = drive.TransferSeconds(20 * kGB, 0.0).value();
  EXPECT_LT(30.0 / full_read, 0.01);
  // Rewind too: "a 5 GB tape file might take an hour to read but only 10
  // seconds to rewind".
  EXPECT_GT(drive.TransferSeconds(5 * kGB, 0.0), 3000.0);
  EXPECT_LE(drive.rewind_seconds, 10.0);
}

}  // namespace
}  // namespace tertio::cost

namespace tertio::cost {
namespace {

TEST(LocalOutputTest, StoringOutputLocallySlowsDiskBoundMethods) {
  CostParams base = Section53Params(4.0);
  auto heavy = WithLocalOutput(base, 0.4);
  ASSERT_TRUE(heavy.ok());
  EXPECT_NEAR((heavy->disk_rate_bps).value(), (base.disk_rate_bps * 0.6).value(), 1e-6);
  auto base_est = Estimate(JoinMethodId::kCdtGh, base);
  auto heavy_est = Estimate(JoinMethodId::kCdtGh, *heavy);
  ASSERT_TRUE(base_est.ok() && heavy_est.ok());
  // Less disk bandwidth for the join itself -> never faster.
  EXPECT_GE(heavy_est->total_seconds, base_est->total_seconds);
  // TT-GH Step II uses no disk: its step2 is insensitive to the share.
  auto tt_base = Estimate(JoinMethodId::kTtGh, base);
  auto tt_heavy = Estimate(JoinMethodId::kTtGh, *heavy);
  ASSERT_TRUE(tt_base.ok() && tt_heavy.ok());
  EXPECT_DOUBLE_EQ((tt_heavy->step2_seconds).value(), (tt_base->step2_seconds).value());
}

TEST(LocalOutputTest, InvalidShareRejected) {
  CostParams base = Section53Params(2.0);
  EXPECT_FALSE(WithLocalOutput(base, -0.1).ok());
  EXPECT_FALSE(WithLocalOutput(base, 1.0).ok());
  EXPECT_TRUE(WithLocalOutput(base, 0.0).ok());
}

}  // namespace
}  // namespace tertio::cost
