// Unit tests for tertio_hash: bucket layout planning and the disk
// partitioner (real and phantom input, range filtering, space gating).

#include <gtest/gtest.h>

#include <map>

#include "disk/striped_group.h"
#include "hash/bucket_layout.h"
#include "hash/disk_partitioner.h"
#include "hash/hasher.h"
#include "mem/double_buffer.h"
#include "relation/generator.h"
#include "relation/relation.h"
#include "sim/simulation.h"
#include "tape/tape_volume.h"
#include "util/math_util.h"

namespace tertio::hash {
namespace {

constexpr ByteCount kBlock = 1024;

TEST(HasherTest, BucketStableAndInRange) {
  for (int64_t key = -100; key < 100; ++key) {
    uint32_t b = BucketOf(key, 17);
    EXPECT_LT(b, 17u);
    EXPECT_EQ(b, BucketOf(key, 17));  // deterministic
  }
}

TEST(HasherTest, BucketsRoughlyUniform) {
  std::map<uint32_t, int> histogram;
  for (int64_t key = 0; key < 10000; ++key) histogram[BucketOf(key, 10)]++;
  for (const auto& [bucket, count] : histogram) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

TEST(BucketLayoutTest, SmallRelationFitsOneBucket) {
  auto layout = BucketLayout::Plan(/*r_blocks=*/50, /*memory_blocks=*/64);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->bucket_count, 1u);
  EXPECT_EQ(layout->r_bucket_blocks, 50u);
  EXPECT_LE(layout->memory_blocks, 64u);
}

TEST(BucketLayoutTest, FootprintRespectsMemory) {
  for (BlockCount r : {100u, 562u, 5000u, 31250u}) {
    for (BlockCount m : {60u, 120u, 500u, 2000u}) {
      auto layout = BucketLayout::Plan(r, m);
      if (!layout.ok()) continue;
      EXPECT_LE(layout->memory_blocks, m) << "r=" << r << " m=" << m;
      EXPECT_EQ((layout->r_bucket_blocks).value(), CeilDiv<uint64_t>(r.value(), layout->bucket_count));
      EXPECT_GE(layout->write_buffer_blocks, 1u);
    }
  }
}

TEST(BucketLayoutTest, PaperRule_BucketCountNearRoverM) {
  // Section 5.1.2: B = |R| / M. Our explicit write buffers push B slightly
  // higher, but the order must match.
  auto layout = BucketLayout::Plan(/*r_blocks=*/10000, /*memory_blocks=*/1000);
  ASSERT_TRUE(layout.ok());
  EXPECT_GE(layout->bucket_count, 10u);
  EXPECT_LE(layout->bucket_count, 40u);
}

TEST(BucketLayoutTest, TooLittleMemoryRejected) {
  // M far below sqrt(|R|): infeasible.
  auto layout = BucketLayout::Plan(/*r_blocks=*/1'000'000, /*memory_blocks=*/100);
  EXPECT_EQ(layout.status().code(), StatusCode::kResourceExhausted);
}

TEST(BucketLayoutTest, MinimumMemoryIsFeasibleBoundary) {
  for (BlockCount r : {100u, 1000u, 12345u}) {
    BlockCount min_m = BucketLayout::MinimumMemory(r);
    EXPECT_TRUE(BucketLayout::Plan(r, min_m).ok()) << "r=" << r;
    if (min_m > 2) {
      EXPECT_FALSE(BucketLayout::Plan(r, min_m / 2).ok()) << "r=" << r;
    }
    // Paper's rule of thumb: min memory ~ 2*sqrt(r).
    EXPECT_LE((min_m).value(), 2 * CeilSqrt(r.value()) + 2);
  }
}

TEST(BucketLayoutTest, ShrinksWriteBufferBeforeGivingUp) {
  // Memory that fits only with w == 1.
  BlockCount r = 10000;
  BlockCount min_m = BucketLayout::MinimumMemory(r);
  auto layout = BucketLayout::Plan(r, min_m + 2);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->write_buffer_blocks, 1u);
}

class DiskPartitionerTest : public ::testing::Test {
 protected:
  DiskPartitionerTest()
      : group_(disk::DiskGroupConfig::Uniform(2, disk::DiskModel::Ideal(1e6), 4000, kBlock, 8),
               &sim_) {}

  // Generates a relation on tape and returns its raw blocks.
  std::vector<BlockPayload> MakeInput(uint64_t tuples, rel::Relation* relation) {
    rel::GeneratorConfig config;
    config.tuple_count = tuples;
    config.keys = rel::KeySequence::kSequentialUnique;
    auto r = rel::GenerateOnTape(config, &tape_);
    *relation = r.value();
    std::vector<BlockPayload> blocks;
    for (BlockIndex i = relation->start_block; i < tape_.size_blocks(); ++i) {
      blocks.push_back(tape_.ReadBlock(i).value());
    }
    return blocks;
  }

  sim::Simulation sim_;
  disk::StripedDiskGroup group_;
  tape::TapeVolume tape_{"t", kBlock};
};

TEST_F(DiskPartitionerTest, PartitionsAllTuplesExactlyOnce) {
  rel::Relation relation;
  std::vector<BlockPayload> input = MakeInput(500, &relation);
  DiskPartitioner::Options options;
  options.schema = &relation.schema;
  options.bucket_count = 7;
  options.write_buffer_blocks = 2;
  DiskPartitioner part(&group_, options);
  ASSERT_TRUE(part.AddBlocks(input, 0.0).ok());
  ASSERT_TRUE(part.Flush().ok());

  uint64_t total_tuples = 0;
  std::map<int64_t, int> seen;
  for (size_t b = 0; b < part.buckets().size(); ++b) {
    const DiskBucket& bucket = part.buckets()[b];
    total_tuples += bucket.tuples;
    std::vector<BlockPayload> out;
    ASSERT_TRUE(group_.ReadExtents(bucket.extents, 10.0, &out).ok());
    ASSERT_TRUE(rel::ForEachTuple(out, &relation.schema, [&](const rel::Tuple& t) {
                  int64_t key = t.GetInt64(0);
                  seen[key]++;
                  // Every tuple is in its hash bucket.
                  EXPECT_EQ(BucketOf(key, 7), b);
                }).ok());
  }
  EXPECT_EQ(total_tuples, 500u);
  EXPECT_EQ(seen.size(), 500u);
  for (const auto& [key, count] : seen) EXPECT_EQ(count, 1) << key;
}

TEST_F(DiskPartitionerTest, BucketRangeFilterDropsOthers) {
  rel::Relation relation;
  std::vector<BlockPayload> input = MakeInput(500, &relation);
  DiskPartitioner::Options options;
  options.schema = &relation.schema;
  options.bucket_count = 8;
  options.write_buffer_blocks = 2;
  options.first_bucket = 2;
  options.bucket_span = 3;  // materialize buckets 2,3,4 only
  DiskPartitioner part(&group_, options);
  ASSERT_TRUE(part.AddBlocks(input, 0.0).ok());
  ASSERT_TRUE(part.Flush().ok());
  ASSERT_EQ(part.buckets().size(), 3u);
  uint64_t kept = 0;
  for (size_t local = 0; local < 3; ++local) {
    const DiskBucket& bucket = part.buckets()[local];
    kept += bucket.tuples;
    std::vector<BlockPayload> out;
    ASSERT_TRUE(group_.ReadExtents(bucket.extents, 10.0, &out).ok());
    ASSERT_TRUE(rel::ForEachTuple(out, &relation.schema, [&](const rel::Tuple& t) {
                  EXPECT_EQ(BucketOf(t.GetInt64(0), 8), local + 2);
                }).ok());
  }
  EXPECT_LT(kept, 500u);  // most tuples dropped
  EXPECT_GT(kept, 0u);
}

TEST_F(DiskPartitionerTest, WriteBufferBatchesRequests) {
  rel::Relation relation;
  std::vector<BlockPayload> input = MakeInput(1000, &relation);  // 100 blocks
  for (BlockCount w : {1u, 8u}) {
    sim::Simulation sim;
    disk::StripedDiskGroup group(
        disk::DiskGroupConfig::Uniform(1, disk::DiskModel::QuantumFireball1080(), 4000, kBlock, 8),
        &sim);
    DiskPartitioner::Options options;
    options.schema = &relation.schema;
    options.bucket_count = 4;
    options.write_buffer_blocks = w;
    DiskPartitioner part(&group, options);
    ASSERT_TRUE(part.AddBlocks(input, 0.0).ok());
    ASSERT_TRUE(part.Flush().ok());
    // Larger write buffers -> fewer requests.
    if (w == 1) {
      EXPECT_GE(group.TotalStats().requests, 100u);
    } else {
      EXPECT_LE(group.TotalStats().requests, 100u / 4 + 4);
    }
  }
}

TEST_F(DiskPartitionerTest, PhantomBlocksSpreadUniformly) {
  DiskPartitioner::Options options;
  options.bucket_count = 10;
  options.write_buffer_blocks = 4;
  DiskPartitioner part(&group_, options);
  ASSERT_TRUE(part.AddPhantomBlocks(1000, 10000, 0.0).ok());
  ASSERT_TRUE(part.Flush().ok());
  BlockCount total_blocks = 0;
  uint64_t total_tuples = 0;
  for (const DiskBucket& bucket : part.buckets()) {
    EXPECT_NEAR(static_cast<double>(bucket.blocks.value()), 100.0, 1.0);
    total_blocks += bucket.blocks;
    total_tuples += bucket.tuples;
  }
  EXPECT_EQ(total_blocks, 1000u);
  EXPECT_EQ(total_tuples, 10000u);
}

TEST_F(DiskPartitionerTest, PhantomWithSpanMaterializesFraction) {
  DiskPartitioner::Options options;
  options.bucket_count = 10;
  options.write_buffer_blocks = 4;
  options.first_bucket = 0;
  options.bucket_span = 5;
  DiskPartitioner part(&group_, options);
  ASSERT_TRUE(part.AddPhantomBlocks(1000, 10000, 0.0).ok());
  ASSERT_TRUE(part.Flush().ok());
  BlockCount total = 0;
  for (const DiskBucket& bucket : part.buckets()) total += bucket.blocks;
  EXPECT_EQ(total, 500u);  // half the buckets -> half the blocks
}

TEST_F(DiskPartitionerTest, PhantomCarryIsExactAcrossCalls) {
  DiskPartitioner::Options options;
  options.bucket_count = 7;
  options.write_buffer_blocks = 1;
  DiskPartitioner part(&group_, options);
  for (int i = 0; i < 13; ++i) {
    ASSERT_TRUE(part.AddPhantomBlocks(3, 5, static_cast<double>(i)).ok());
  }
  ASSERT_TRUE(part.Flush().ok());
  BlockCount total_blocks = 0;
  uint64_t total_tuples = 0;
  for (const DiskBucket& bucket : part.buckets()) {
    total_blocks += bucket.blocks;
    total_tuples += bucket.tuples;
  }
  EXPECT_EQ(total_blocks, 39u);
  EXPECT_EQ(total_tuples, 65u);
}

TEST_F(DiskPartitionerTest, SpaceGatingDelaysWrites) {
  mem::InterleavedBuffer space(10);
  // Occupy the whole buffer; free at t=100.
  ASSERT_TRUE(space.AcquireFree(10).ok());
  ASSERT_TRUE(space.Release(10, 100.0).ok());

  DiskPartitioner::Options options;
  options.bucket_count = 2;
  options.write_buffer_blocks = 5;
  options.space = &space;
  DiskPartitioner part(&group_, options);
  ASSERT_TRUE(part.AddPhantomBlocks(10, 100, 0.0).ok());
  ASSERT_TRUE(part.Flush().ok());
  // Writes could not start before the space freed at t=100.
  EXPECT_GE(part.last_write_end(), 100.0);
}

TEST_F(DiskPartitionerTest, AddBlocksWithoutSchemaRejected) {
  DiskPartitioner::Options options;
  options.bucket_count = 2;
  DiskPartitioner part(&group_, options);
  std::vector<BlockPayload> input(1);
  EXPECT_EQ(part.AddBlocks(input, 0.0).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tertio::hash
