#include "common.h"
using namespace tertio;
using namespace tertio::units_compile_fail;
int main() { auto x = kBlocks * 0.5; (void)x; return 0; }
