#include "common.h"
using namespace tertio;
using namespace tertio::units_compile_fail;
int main() { std::uint64_t x = kBlocks; (void)x; return 0; }
