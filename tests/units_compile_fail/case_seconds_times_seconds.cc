#include "common.h"
using namespace tertio;
using namespace tertio::units_compile_fail;
int main() { auto x = kSeconds * kSeconds; (void)x; return 0; }
