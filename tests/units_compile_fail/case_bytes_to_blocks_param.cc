#include "common.h"
using namespace tertio;
using namespace tertio::units_compile_fail;
int main() { auto x = TakesBlocks(kBytes); (void)x; return 0; }
