#pragma once
// Shared fixture for the negative-compilation harness: one variable of each
// strong type, so every case file is a single illegal expression.
#include "util/units.h"

namespace tertio::units_compile_fail {
inline constexpr Blocks kBlocks{16};
inline constexpr Bytes kBytes{8192};
inline constexpr BlockIdx kIdx{4};
inline constexpr SimSeconds kSeconds{1.5};
inline constexpr BytesPerSecond kRate{1.5e6};
inline Blocks TakesBlocks(Blocks n) { return n; }
}  // namespace tertio::units_compile_fail
