#include "common.h"
using namespace tertio;
using namespace tertio::units_compile_fail;
int main() { auto x = kBlocks * kBlocks; (void)x; return 0; }
