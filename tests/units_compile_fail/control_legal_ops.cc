#include "common.h"
using namespace tertio;
using namespace tertio::units_compile_fail;
int main() { auto a = kBlocks + Blocks{1}; auto b = BlocksToBytes(a, kBytes); auto t = b / kRate; auto i = kIdx + a; auto d = i - kIdx; (void)b; (void)t; (void)d; return 0; }
