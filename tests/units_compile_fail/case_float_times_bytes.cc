#include "common.h"
using namespace tertio;
using namespace tertio::units_compile_fail;
int main() { auto x = 0.9 * kBytes; (void)x; return 0; }
