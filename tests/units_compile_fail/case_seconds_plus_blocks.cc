#include "common.h"
using namespace tertio;
using namespace tertio::units_compile_fail;
int main() { auto x = kSeconds + kBlocks; (void)x; return 0; }
