// Tests for tertio_exec: machine assembly, workload preparation, experiment
// driving, report rendering.

#include <gtest/gtest.h>

#include <cmath>

#include "exec/experiment.h"
#include "exec/machine.h"
#include "exec/report.h"

namespace tertio::exec {
namespace {

TEST(MachineTest, PaperTestbedShape) {
  MachineConfig config = MachineConfig::PaperTestbed(500 * kMB, 16 * kMB);
  Machine machine(config);
  EXPECT_EQ(machine.disks().disk_count(), 2);
  EXPECT_EQ(machine.memory_blocks(), BytesToBlocks(16 * kMB, kDefaultBlockBytes));
  EXPECT_GE(machine.disk_blocks(), BytesToBlocks(500 * kMB, kDefaultBlockBytes));
  EXPECT_FALSE(machine.drive_r().loaded());
  machine.MountTapes();
  EXPECT_TRUE(machine.drive_r().loaded());
  EXPECT_TRUE(machine.drive_s().loaded());
  EXPECT_EQ(machine.library(), nullptr);
}

TEST(MachineTest, EffectiveRatesFollowModels) {
  Machine machine(MachineConfig::PaperTestbed(100 * kMB, 16 * kMB));
  EXPECT_DOUBLE_EQ((machine.EffectiveTapeRate(0.0)).value(), 1.5e6);
  EXPECT_NEAR((machine.EffectiveTapeRate(0.25)).value(), 2.0e6, 1e3);
  EXPECT_NEAR((machine.AggregateDiskRate()).value(), 2 * 4.2e6, 1.0);
}

TEST(MachineTest, LibraryAttachesWhenRequested) {
  MachineConfig config = MachineConfig::PaperTestbed(100 * kMB, 16 * kMB);
  config.with_library = true;
  Machine machine(config);
  ASSERT_NE(machine.library(), nullptr);
  EXPECT_EQ(machine.library()->slot_count(), 0);
}

TEST(WorkloadTest, PreparePlacesRelationsOnTapes) {
  Machine machine(MachineConfig::PaperTestbed(100 * kMB, 16 * kMB));
  WorkloadConfig workload;
  workload.r_bytes = 10 * kMB;
  workload.s_bytes = 40 * kMB;
  workload.phantom = true;
  auto prepared = PrepareWorkload(&machine, workload);
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->r.volume, &machine.tape_r());
  EXPECT_EQ(prepared->s.volume, &machine.tape_s());
  EXPECT_EQ(prepared->r.blocks, BytesToBlocks(10 * kMB, kDefaultBlockBytes));
  EXPECT_EQ(prepared->s.blocks, BytesToBlocks(40 * kMB, kDefaultBlockBytes));
  EXPECT_TRUE(machine.drive_r().loaded());
  // Drives were mounted uncosted: no virtual time has passed.
  EXPECT_DOUBLE_EQ((machine.sim().Horizon()).value(), 0.0);
}

TEST(WorkloadTest, InvalidWorkloadRejected) {
  Machine machine(MachineConfig::PaperTestbed(100 * kMB, 16 * kMB));
  WorkloadConfig workload;
  EXPECT_FALSE(PrepareWorkload(&machine, workload).ok());  // empty sizes
  EXPECT_FALSE(PrepareWorkload(nullptr, workload).ok());
}

TEST(WorkloadTest, FullDataKeysReferenceR) {
  Machine machine(MachineConfig::PaperTestbed(100 * kMB, 16 * kMB));
  WorkloadConfig workload;
  workload.r_bytes = 200 * kKB;
  workload.s_bytes = 800 * kKB;
  workload.phantom = false;
  auto prepared = PrepareWorkload(&machine, workload);
  ASSERT_TRUE(prepared.ok());
  EXPECT_GT(prepared->r.tuple_count, 0u);
  EXPECT_FALSE(prepared->r.phantom);
}

TEST(ExperimentTest, RunJoinExperimentEndToEnd) {
  MachineConfig config = MachineConfig::PaperTestbed(60 * kMB, 4 * kMB);
  WorkloadConfig workload;
  workload.r_bytes = 10 * kMB;
  workload.s_bytes = 50 * kMB;
  workload.phantom = true;
  auto stats = RunJoinExperiment(config, workload, JoinMethodId::kCdtGh);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->response_seconds, 0.0);
  EXPECT_EQ(stats->method, "CDT-GH");
}

TEST(ExperimentTest, CostParamsMatchMachine) {
  Machine machine(MachineConfig::PaperTestbed(500 * kMB, 16 * kMB));
  WorkloadConfig workload;
  workload.r_bytes = 100 * kMB;
  workload.s_bytes = 400 * kMB;
  workload.compressibility = 0.25;
  auto params = CostParamsFor(machine, workload);
  EXPECT_EQ(params.r_blocks, BytesToBlocks(100 * kMB, kDefaultBlockBytes));
  EXPECT_EQ(params.memory_blocks, machine.memory_blocks());
  EXPECT_NEAR((params.tape_rate_bps).value(), 2.0e6, 1e3);
  EXPECT_NEAR((params.disk_rate_bps).value(), 8.4e6, 1.0);
}

TEST(ReportTest, TableAlignsColumns) {
  TableReport table({"a", "method"});
  table.AddRow({"1", "CTT-GH"});
  table.AddRow({"22", "x"});
  std::string out = table.Render();
  EXPECT_NE(out.find("a   method"), std::string::npos);
  EXPECT_NE(out.find("22  x"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ReportTest, SeriesRendersNanAsDash) {
  SeriesReport series("x", {"y1", "y2"});
  series.AddPoint(1.0, {2.5, std::nan("")});
  std::string out = series.Render(1);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(ReportTest, MismatchedRowAborts) {
  TableReport table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width");
}

}  // namespace
}  // namespace tertio::exec
