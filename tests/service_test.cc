// Query-service tests: the Site/QuerySession split of the legacy Machine
// and the QueryScheduler on top.
//
// The acceptance bar of the split is bit-identity: a single join executed
// through Site + QuerySession must report exactly the simulated seconds and
// stats of the legacy Machine path, for all seven methods, audit-clean.
// On top of that, sessions must partition (and return) the site's memory,
// disk and drive budgets; the scheduler must admission-check requests,
// drain in arrival order, and — under the shared-scan policy — multicast an
// in-flight S pass to queued joins on the same cartridge, with identical
// join results to the no-sharing baseline.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "exec/experiment.h"
#include "exec/machine.h"
#include "exec/query_scheduler.h"
#include "exec/query_session.h"
#include "exec/service_workload.h"
#include "exec/site.h"
#include "join/join_method.h"
#include "relation/generator.h"
#include "sim/auditor.h"
#include "sim/simulation.h"
#include "tape/tape_drive.h"
#include "tape/tape_volume.h"

namespace tertio::exec {
namespace {

// Mirrors PrepareWorkload (experiment.cc) onto caller-owned loose volumes,
// so the direct-Site path feeds the executors the exact relations the
// Machine path generates.
struct LooseWorkload {
  std::unique_ptr<tape::TapeVolume> tape_r;
  std::unique_ptr<tape::TapeVolume> tape_s;
  rel::Relation r;
  rel::Relation s;
};

LooseWorkload GenerateLoose(ByteCount block_bytes, const WorkloadConfig& workload) {
  LooseWorkload loose;
  loose.tape_r = std::make_unique<tape::TapeVolume>("tape-R", block_bytes);
  loose.tape_s = std::make_unique<tape::TapeVolume>("tape-S", block_bytes);
  rel::GeneratorConfig r_config;
  r_config.name = "R";
  r_config.record_bytes = workload.record_bytes;
  r_config.compressibility = workload.compressibility;
  r_config.seed = workload.seed;
  r_config.phantom = workload.phantom;
  r_config.keys = rel::KeySequence::kSequentialUnique;
  std::uint64_t tuples_per_block =
      rel::TuplesPerBlock(rel::Schema::KeyPayload(workload.record_bytes), block_bytes);
  r_config.tuple_count = BytesToBlocks(workload.r_bytes, block_bytes).value() * tuples_per_block;
  rel::GeneratorConfig s_config = r_config;
  s_config.name = "S";
  s_config.seed = workload.seed + 1;
  s_config.keys = rel::KeySequence::kForeignKeyUniform;
  s_config.key_domain = r_config.tuple_count;
  s_config.tuple_count = BytesToBlocks(workload.s_bytes, block_bytes).value() * tuples_per_block;
  auto r = rel::GenerateOnTape(r_config, loose.tape_r.get());
  auto s = rel::GenerateOnTape(s_config, loose.tape_s.get());
  TERTIO_CHECK(r.ok() && s.ok(), "loose workload generation failed");
  loose.r = std::move(*r);
  loose.s = std::move(*s);
  return loose;
}

void ExpectBitIdentical(const join::JoinStats& a, const join::JoinStats& b,
                        std::string_view label) {
  EXPECT_EQ(a.response_seconds, b.response_seconds) << label;  // exact, not near
  EXPECT_EQ(a.step1_seconds, b.step1_seconds) << label;
  EXPECT_EQ(a.step2_seconds, b.step2_seconds) << label;
  EXPECT_EQ(a.tape_blocks_read, b.tape_blocks_read) << label;
  EXPECT_EQ(a.tape_blocks_written, b.tape_blocks_written) << label;
  EXPECT_EQ(a.tape_blocks_shared, b.tape_blocks_shared) << label;
  EXPECT_EQ(a.tape_blocks_cached, b.tape_blocks_cached) << label;
  EXPECT_EQ(a.disk_blocks_read, b.disk_blocks_read) << label;
  EXPECT_EQ(a.disk_blocks_written, b.disk_blocks_written) << label;
  EXPECT_EQ(a.disk_requests, b.disk_requests) << label;
  EXPECT_EQ(a.r_scans, b.r_scans) << label;
  EXPECT_EQ(a.iterations, b.iterations) << label;
  EXPECT_EQ(a.peak_memory_blocks, b.peak_memory_blocks) << label;
  EXPECT_EQ(a.peak_disk_blocks, b.peak_disk_blocks) << label;
  EXPECT_EQ(a.memory_occupied_blocks, b.memory_occupied_blocks) << label;
  ASSERT_EQ(a.spans.phases().size(), b.spans.phases().size()) << label;
  for (std::size_t i = 0; i < a.spans.phases().size(); ++i) {
    const sim::PhaseSummary& pa = a.spans.phases()[i];
    const sim::PhaseSummary& pb = b.spans.phases()[i];
    SCOPED_TRACE(std::string(label) + " phase " + pa.phase);
    EXPECT_EQ(pa.phase, pb.phase);
    EXPECT_EQ(pa.device, pb.device);
    EXPECT_EQ(pa.stage_count, pb.stage_count);
    EXPECT_EQ(pa.blocks, pb.blocks);
    EXPECT_EQ(pa.bytes, pb.bytes);
    EXPECT_EQ(pa.busy_seconds, pb.busy_seconds);
    EXPECT_EQ(pa.window.start, pb.window.start);
    EXPECT_EQ(pa.window.end, pb.window.end);
  }
}

// The tentpole acceptance bar: a single join through Site + QuerySession is
// bit-identical to the legacy Machine path, for all seven methods, under
// audit.
TEST(ServiceBitIdentityTest, AllSevenMethodsMatchTheLegacyMachinePath) {
  for (JoinMethodId method : kAllJoinMethods) {
    // Experiment-3 parameters (simsan_test.cc): every method is feasible.
    WorkloadConfig workload;
    workload.r_bytes = 18 * kMB;
    workload.s_bytes = 1000 * kMB;
    workload.phantom = true;

    MachineConfig machine_config = MachineConfig::PaperTestbed(50 * kMB, 5400 * kKB);
    Machine machine(machine_config);
    machine.EnableAudit();
    auto prepared = PrepareWorkload(&machine, workload);
    ASSERT_TRUE(prepared.ok()) << prepared.status();
    join::JoinSpec machine_spec;
    machine_spec.r = &prepared->r;
    machine_spec.s = &prepared->s;
    join::JoinContext machine_ctx = machine.context();
    auto machine_stats = join::CreateJoinMethod(method)->Execute(machine_spec, machine_ctx);
    ASSERT_TRUE(machine_stats.ok()) << JoinMethodName(method) << ": " << machine_stats.status();

    SiteConfig site_config = machine_config.ToSiteConfig();
    auto site = Site::Create(site_config);
    ASSERT_TRUE(site.ok()) << site.status();
    (*site)->EnableAudit();
    SessionResources all;
    all.memory_blocks = (*site)->memory_blocks();
    all.disk_blocks = (*site)->disk_blocks();
    auto session = QuerySession::Open(site->get(), all);
    ASSERT_TRUE(session.ok()) << session.status();
    LooseWorkload loose = GenerateLoose(site_config.block_bytes, workload);
    (*session)->ForceMount(loose.tape_r.get(), loose.tape_s.get());
    join::JoinSpec site_spec;
    site_spec.r = &loose.r;
    site_spec.s = &loose.s;
    join::JoinContext site_ctx = (*session)->context();
    auto site_stats = join::CreateJoinMethod(method)->Execute(site_spec, site_ctx);
    ASSERT_TRUE(site_stats.ok()) << JoinMethodName(method) << ": " << site_stats.status();

    ExpectBitIdentical(*machine_stats, *site_stats, JoinMethodName(method));
    EXPECT_TRUE((*site)->auditor()->clean()) << (*site)->auditor()->TraceString();
    EXPECT_TRUE(machine.auditor()->clean()) << machine.auditor()->TraceString();
  }
}

TEST(SiteConfigTest, ValidateRejectsDegenerateConfigs) {
  SiteConfig good;
  EXPECT_TRUE(good.Validate().ok());

  // Wrap boundary: configurations whose byte sizing overflows 64 bits must
  // be rejected as a Status by the checked conversions, not wrapped into a
  // tiny allocation (regression for the CheckedBlocksToBytes adoption).
  SiteConfig wrap_disk = good;
  wrap_disk.disk_space_bytes = ByteCount{~std::uint64_t{0}};
  EXPECT_FALSE(wrap_disk.Validate().ok());

  SiteConfig wrap_cache = good;
  wrap_cache.cache_blocks = BlockCount{~std::uint64_t{0} / 2};
  EXPECT_FALSE(wrap_cache.Validate().ok());

  SiteConfig no_disks = good;
  no_disks.disk_count = 0;
  EXPECT_FALSE(no_disks.Validate().ok());
  EXPECT_FALSE(Site::Create(no_disks).ok());

  SiteConfig tiny_memory = good;
  tiny_memory.memory_bytes = good.block_bytes - 1;
  EXPECT_FALSE(tiny_memory.Validate().ok());

  SiteConfig no_stripe = good;
  no_stripe.stripe_unit = 0;
  EXPECT_FALSE(no_stripe.Validate().ok());

  SiteConfig one_drive = good;
  one_drive.drive_count = 1;
  EXPECT_FALSE(one_drive.Validate().ok());

  SiteConfig no_blocks = good;
  no_blocks.block_bytes = 0;
  EXPECT_FALSE(no_blocks.Validate().ok());

  SiteConfig tiny_disk = good;
  tiny_disk.disk_space_bytes = good.block_bytes - 1;
  EXPECT_FALSE(tiny_disk.Validate().ok());

  // The extent cache may not swallow the whole disk: sessions need space.
  SiteConfig cache_eats_disk = good;
  cache_eats_disk.cache_blocks = BytesToBlocks(good.disk_space_bytes, good.block_bytes);
  EXPECT_FALSE(cache_eats_disk.Validate().ok());
  cache_eats_disk.cache_blocks -= 1;
  EXPECT_TRUE(cache_eats_disk.Validate().ok());
}

TEST(MachineConfigTest, ValidateDelegatesToSiteRules) {
  MachineConfig good;
  EXPECT_TRUE(good.Validate().ok());
  MachineConfig bad = good;
  bad.disk_count = -2;
  EXPECT_FALSE(bad.Validate().ok());
  bad = good;
  bad.memory_bytes = 0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(QuerySessionTest, LeasesPartitionTheSiteAndReturnOnClose) {
  SiteConfig config;
  config.drive_count = 4;
  config.memory_bytes = 32 * kMB;
  config.disk_space_bytes = 100 * kMB;
  Site site(config);

  SessionResources half;
  half.name = "a";
  half.memory_blocks = site.memory_blocks() / 2;
  half.disk_blocks = site.disk_blocks() / 2;
  auto a = QuerySession::Open(&site, half);
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_EQ(site.memory().reserved_blocks(), half.memory_blocks);
  EXPECT_EQ(site.free_drives(), 2);

  half.name = "b";
  auto b = QuerySession::Open(&site, half);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(site.memory().reserved_blocks(), 2 * half.memory_blocks);
  EXPECT_EQ(site.free_drives(), 0);
  EXPECT_EQ(site.disks().allocator().free_blocks(), site.disk_blocks() - 2 * half.disk_blocks);

  // No drives (and no memory) left: a third lease must fail cleanly.
  half.name = "c";
  auto c = QuerySession::Open(&site, half);
  EXPECT_FALSE(c.ok());

  // Closing a session returns every resource it held.
  a->reset();
  EXPECT_EQ(site.memory().reserved_blocks(), half.memory_blocks);
  EXPECT_EQ(site.free_drives(), 2);
  EXPECT_EQ(site.disks().allocator().free_blocks(), site.disk_blocks() - half.disk_blocks);
  half.name = "d";
  auto d = QuerySession::Open(&site, half);
  EXPECT_TRUE(d.ok()) << d.status();
}

TEST(QuerySessionTest, SessionBudgetBoundsAreLocal) {
  SiteConfig config;
  config.memory_bytes = 32 * kMB;
  Site site(config);
  SessionResources res;
  res.memory_blocks = 16;
  res.disk_blocks = 64;
  auto session = QuerySession::Open(&site, res);
  ASSERT_TRUE(session.ok()) << session.status();
  // The session's own M_q is the binding constraint, not the site's M.
  EXPECT_TRUE((*session)->memory().Reserve(16, "w").ok());
  EXPECT_FALSE((*session)->memory().Reserve(1, "w").ok());
  EXPECT_GT(site.memory().free_blocks(), 0u);
  // Same for the disk carve.
  auto fits = (*session)->disks().allocator().Allocate(64, 0.0, "w");
  EXPECT_TRUE(fits.ok());
  auto overflow = (*session)->disks().allocator().Allocate(1, 0.0, "w");
  EXPECT_FALSE(overflow.ok());
  Status freed = (*session)->disks().allocator().Free(*fits, 0.0, "w");
  EXPECT_TRUE(freed.ok());
  Status released = (*session)->memory().ReleaseAll("w");
  EXPECT_TRUE(released.ok());
}

TEST(QuerySessionTest, FailedOpenReleasesItsDrivesThroughTheLeaseGuard) {
  SiteConfig config;
  config.memory_bytes = 32 * kMB;
  Site site(config);
  sim::Auditor* auditor = site.EnableAudit();

  // Regression: Open leases its two drives before the memory lease and the
  // disk carve. Either later step failing used to leak the drives (the
  // error return skipped the release); the DriveLease guard is now the
  // single release path, so a failed admission leaves the pool untouched.
  ASSERT_EQ(site.free_drives(), 2);

  SessionResources over_memory;
  over_memory.name = "over-mem";
  over_memory.memory_blocks = site.memory_blocks() + 1;
  EXPECT_FALSE(QuerySession::Open(&site, over_memory).ok());
  EXPECT_EQ(site.free_drives(), 2);
  EXPECT_EQ(site.memory().reserved_blocks(), 0u);

  SessionResources over_disk;
  over_disk.name = "over-disk";
  over_disk.memory_blocks = 1;
  over_disk.disk_blocks = site.disk_blocks() + 1;
  EXPECT_FALSE(QuerySession::Open(&site, over_disk).ok());
  EXPECT_EQ(site.free_drives(), 2);
  // The memory lease acquired before the failing carve must unwind too.
  EXPECT_EQ(site.memory().reserved_blocks(), 0u);

  // The pool is genuinely usable afterwards, and the auditor's
  // lease-exclusivity ledger balanced over the failed opens.
  SessionResources fits;
  fits.name = "fits";
  fits.memory_blocks = 1;
  auto session = QuerySession::Open(&site, fits);
  EXPECT_TRUE(session.ok()) << session.status();
  session->reset();
  EXPECT_EQ(site.free_drives(), 2);
  EXPECT_TRUE(auditor->Check().ok()) << auditor->TraceString();
}

ServiceWorkloadConfig SmallServiceWorkload(bool phantom) {
  ServiceWorkloadConfig config;
  config.s_cartridges = 1;
  config.s_bytes = phantom ? 100 * kMB : 64 * kKB;
  config.r_relations = 3;
  config.r_bytes = phantom ? 5 * kMB : 16 * kKB;
  config.phantom = phantom;
  return config;
}

JoinRequest RequestFor(Site* site, const ServiceWorkload& workload, int r_index, int s_index,
                       SimSeconds arrival) {
  JoinRequest request;
  request.arrival = arrival;
  request.spec.r = &workload.r[static_cast<size_t>(r_index)];
  request.spec.s = &workload.s[static_cast<size_t>(s_index)];
  request.method = JoinMethodId::kCdtGh;
  request.memory_blocks = site->memory_blocks();
  request.disk_blocks = site->session_disk_blocks();
  return request;
}

TEST(QuerySchedulerTest, AdmissionControlRejectsImpossibleRequests) {
  SiteConfig config;
  config.with_library = true;
  Site site(config);
  auto workload = PrepareServiceWorkload(&site, SmallServiceWorkload(/*phantom=*/true));
  ASSERT_TRUE(workload.ok()) << workload.status();
  QueryScheduler scheduler(&site, ServicePolicy::kFifo);

  JoinRequest over_memory = RequestFor(&site, *workload, 0, 0, 0.0);
  over_memory.memory_blocks = site.memory_blocks() + 1;
  EXPECT_FALSE(scheduler.Submit(over_memory).ok());

  JoinRequest over_disk = RequestFor(&site, *workload, 0, 0, 0.0);
  over_disk.disk_blocks = site.disk_blocks() + 1;
  EXPECT_FALSE(scheduler.Submit(over_disk).ok());

  // A relation on a loose (non-library) volume is not addressable.
  tape::TapeVolume loose("loose", config.block_bytes);
  rel::Relation foreign = workload->r[0];
  foreign.volume = &loose;
  JoinRequest off_library = RequestFor(&site, *workload, 0, 0, 0.0);
  off_library.spec.r = &foreign;
  EXPECT_FALSE(scheduler.Submit(off_library).ok());

  EXPECT_TRUE(scheduler.Submit(RequestFor(&site, *workload, 0, 0, 0.0)).ok());
  EXPECT_EQ(scheduler.pending(), 1u);
  EXPECT_EQ(scheduler.pending_on(workload->s_slots[0]), 1u);
  EXPECT_EQ(scheduler.service_stats().rejected, 3u);

  // A site without a library cannot serve at all.
  SiteConfig bare_config;
  Site bare(bare_config);
  QueryScheduler bare_scheduler(&bare, ServicePolicy::kFifo);
  EXPECT_FALSE(bare_scheduler.Submit(RequestFor(&bare, *workload, 0, 0, 0.0)).ok());
}

TEST(QuerySchedulerTest, FifoDrainsInArrivalOrderAndQueriesNeverStartEarly) {
  SiteConfig config;
  config.with_library = true;
  Site site(config);
  auto workload = PrepareServiceWorkload(&site, SmallServiceWorkload(/*phantom=*/true));
  ASSERT_TRUE(workload.ok()) << workload.status();
  QueryScheduler scheduler(&site, ServicePolicy::kFifo);
  // Submitted out of arrival order on purpose.
  auto q2 = scheduler.Submit(RequestFor(&site, *workload, 1, 0, 100.0));
  auto q1 = scheduler.Submit(RequestFor(&site, *workload, 0, 0, 0.0));
  auto q3 = scheduler.Submit(RequestFor(&site, *workload, 2, 0, 200.0));
  ASSERT_TRUE(q1.ok() && q2.ok() && q3.ok());
  ASSERT_TRUE(scheduler.Run().ok());
  const auto& outcomes = scheduler.outcomes();
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].id, *q1);
  EXPECT_EQ(outcomes[1].id, *q2);
  EXPECT_EQ(outcomes[2].id, *q3);
  for (const QueryOutcome& out : outcomes) {
    EXPECT_TRUE(out.status.ok()) << out.status;
    EXPECT_GE(out.start, out.arrival);
    EXPECT_GT(out.completion, out.start);
    EXPECT_FALSE(out.scan_shared);
    EXPECT_EQ(out.stats.tape_blocks_shared, 0u);
  }
  ServiceStats stats = scheduler.service_stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.scan_shared_queries, 0u);
  EXPECT_EQ(stats.makespan, site.sim().Horizon());
}

TEST(QuerySchedulerTest, SharedScanMulticastsTheSPassAndReducesTapeTraffic) {
  auto run = [](ServicePolicy policy) {
    SiteConfig config;
    config.with_library = true;
    auto site = std::make_unique<Site>(config);
    auto workload = PrepareServiceWorkload(site.get(), SmallServiceWorkload(/*phantom=*/true));
    TERTIO_CHECK(workload.ok(), "workload setup failed");
    QueryScheduler scheduler(site.get(), policy);
    for (int j = 0; j < 3; ++j) {
      auto id = scheduler.Submit(RequestFor(site.get(), *workload, j, 0, 0.0));
      TERTIO_CHECK(id.ok(), "submit failed");
    }
    Status ran = scheduler.Run();
    TERTIO_CHECK(ran.ok(), "run failed");
    ServiceStats stats = scheduler.service_stats();
    TERTIO_CHECK(stats.completed == 3, "all queries must complete");
    return stats;
  };
  ServiceStats fifo = run(ServicePolicy::kFifo);
  ServiceStats shared = run(ServicePolicy::kSharedScan);
  EXPECT_EQ(fifo.scan_shared_queries, 0u);
  EXPECT_EQ(fifo.tape_blocks_shared, 0u);
  // Two of the three queries ride the leader's pass: their S blocks move
  // from read to shared, and the queue drains sooner.
  EXPECT_EQ(shared.scan_shared_queries, 2u);
  EXPECT_GT(shared.tape_blocks_shared, 0u);
  EXPECT_LT(shared.tape_blocks_read, fifo.tape_blocks_read);
  EXPECT_EQ(shared.tape_blocks_read + shared.tape_blocks_shared, fifo.tape_blocks_read);
  EXPECT_LT(shared.makespan, fifo.makespan);
}

TEST(QuerySchedulerTest, SharedScanDeliversIdenticalJoinResults) {
  // Full-data mode: the multicast path must deliver the same tuples the
  // physical pass would.
  auto run = [](ServicePolicy policy) {
    SiteConfig config;
    config.with_library = true;
    auto site = std::make_unique<Site>(config);
    auto workload = PrepareServiceWorkload(site.get(), SmallServiceWorkload(/*phantom=*/false));
    TERTIO_CHECK(workload.ok(), "workload setup failed");
    QueryScheduler scheduler(site.get(), policy);
    for (int j = 0; j < 3; ++j) {
      auto id = scheduler.Submit(RequestFor(site.get(), *workload, j, 0, 0.0));
      TERTIO_CHECK(id.ok(), "submit failed");
    }
    Status ran = scheduler.Run();
    TERTIO_CHECK(ran.ok(), "run failed");
    return scheduler.outcomes();
  };
  auto fifo = run(ServicePolicy::kFifo);
  auto shared = run(ServicePolicy::kSharedScan);
  ASSERT_EQ(fifo.size(), shared.size());
  for (std::size_t i = 0; i < fifo.size(); ++i) {
    ASSERT_TRUE(fifo[i].status.ok()) << fifo[i].status;
    ASSERT_TRUE(shared[i].status.ok()) << shared[i].status;
    EXPECT_EQ(fifo[i].id, shared[i].id);
    ASSERT_TRUE(fifo[i].stats.output_valid);
    ASSERT_TRUE(shared[i].stats.output_valid);
    EXPECT_EQ(fifo[i].stats.output_tuples, shared[i].stats.output_tuples) << i;
    EXPECT_EQ(fifo[i].stats.output_checksum, shared[i].stats.output_checksum) << i;
  }
}

TEST(QuerySchedulerTest, ClosedLoopClientsSubmitFromCompletions) {
  SiteConfig config;
  config.with_library = true;
  Site site(config);
  auto workload = PrepareServiceWorkload(&site, SmallServiceWorkload(/*phantom=*/true));
  ASSERT_TRUE(workload.ok()) << workload.status();
  QueryScheduler scheduler(&site, ServicePolicy::kSharedScan);
  int resubmits = 2;
  scheduler.set_on_complete([&](const QueryOutcome& out) {
    if (resubmits-- > 0) {
      JoinRequest next = RequestFor(&site, *workload, resubmits, 0, out.completion);
      auto id = scheduler.Submit(std::move(next));
      TERTIO_CHECK(id.ok(), "closed-loop submit failed");
    }
  });
  ASSERT_TRUE(scheduler.Submit(RequestFor(&site, *workload, 0, 0, 0.0)).ok());
  ASSERT_TRUE(scheduler.Run().ok());
  EXPECT_EQ(scheduler.outcomes().size(), 3u);
  EXPECT_EQ(scheduler.service_stats().completed, 3u);
  // Each closed-loop arrival is its predecessor's completion, so starts are
  // strictly ordered.
  for (std::size_t i = 1; i < scheduler.outcomes().size(); ++i) {
    EXPECT_GE(scheduler.outcomes()[i].start, scheduler.outcomes()[i - 1].completion);
  }
}

// --- Scheduler bugfix regressions ------------------------------------------

TEST(QuerySchedulerTest, DuplicateExplicitIdsAreRejectedAndIdSpaceSaturates) {
  SiteConfig config;
  config.with_library = true;
  Site site(config);
  auto workload = PrepareServiceWorkload(&site, SmallServiceWorkload(/*phantom=*/true));
  ASSERT_TRUE(workload.ok()) << workload.status();
  QueryScheduler scheduler(&site, ServicePolicy::kFifo);

  JoinRequest explicit_id = RequestFor(&site, *workload, 0, 0, 0.0);
  explicit_id.id = 7;
  ASSERT_TRUE(scheduler.Submit(explicit_id).ok());

  // Regression: a duplicate explicit id used to be queued twice into the
  // cartridge index, corrupting Take()/Unindex() pairing. It must reject.
  JoinRequest duplicate = RequestFor(&site, *workload, 1, 0, 1.0);
  duplicate.id = 7;
  auto rejected = scheduler.Submit(duplicate);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(scheduler.pending(), 1u);
  EXPECT_EQ(scheduler.pending_on(workload->s_slots[0]), 1u);
  EXPECT_EQ(scheduler.service_stats().rejected, 1u);

  // Auto ids continue past the highest explicit id.
  auto next = scheduler.Submit(RequestFor(&site, *workload, 1, 0, 1.0));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 8u);

  // Regression: id UINT64_MAX used to wrap next_id_ back to 0, re-issuing
  // live ids. The cursor saturates instead, and once the last id is taken
  // the auto-assign path reports exhaustion rather than duplicating it.
  JoinRequest last = RequestFor(&site, *workload, 2, 0, 2.0);
  last.id = std::numeric_limits<std::uint64_t>::max();
  ASSERT_TRUE(scheduler.Submit(last).ok());
  auto exhausted = scheduler.Submit(RequestFor(&site, *workload, 0, 0, 3.0));
  EXPECT_FALSE(exhausted.ok());
}

TEST(QuerySchedulerTest, FollowersRequeueInsteadOfJumpingTheQueueWhenTheLeaderFails) {
  SiteConfig config;
  config.with_library = true;
  Site site(config);
  ServiceWorkloadConfig shape = SmallServiceWorkload(/*phantom=*/true);
  shape.s_cartridges = 2;
  auto workload = PrepareServiceWorkload(&site, shape);
  ASSERT_TRUE(workload.ok()) << workload.status();
  QueryScheduler scheduler(&site, ServicePolicy::kSharedScan);

  // W executes first and advances the horizon, so everything below is
  // already "arrived" when its leader starts.
  auto w = scheduler.Submit(RequestFor(&site, *workload, 0, 1, 0.0));
  // L leads cartridge 0 but cannot run: its disk carve is far below what
  // CDT-GH needs, so execution fails after admission.
  JoinRequest broken = RequestFor(&site, *workload, 1, 0, 0.1);
  broken.disk_blocks = 2;
  auto l = scheduler.Submit(std::move(broken));
  // X arrived before F but waits on the *other* cartridge.
  auto x = scheduler.Submit(RequestFor(&site, *workload, 2, 1, 0.15));
  auto f = scheduler.Submit(RequestFor(&site, *workload, 0, 0, 0.2));
  ASSERT_TRUE(w.ok() && l.ok() && x.ok() && f.ok());
  ASSERT_TRUE(scheduler.Run().ok());

  const auto& outcomes = scheduler.outcomes();
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(outcomes[0].id, *w);
  EXPECT_TRUE(outcomes[0].status.ok()) << outcomes[0].status;
  EXPECT_EQ(outcomes[1].id, *l);
  EXPECT_FALSE(outcomes[1].status.ok());
  // Regression: F was swept up as L's follower; when L failed, F used to
  // execute immediately anyway — jumping X, which arrived earlier. F must
  // requeue and wait its turn behind X.
  EXPECT_EQ(outcomes[2].id, *x);
  EXPECT_TRUE(outcomes[2].status.ok()) << outcomes[2].status;
  EXPECT_EQ(outcomes[3].id, *f);
  EXPECT_TRUE(outcomes[3].status.ok()) << outcomes[3].status;
  EXPECT_FALSE(outcomes[3].scan_shared);
  ServiceStats stats = scheduler.service_stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.failed, 1u);
}

// --- Tape-drive window regressions -----------------------------------------

TEST(TapeDriveWindowTest, RangeContainsIsOverflowSafe) {
  using tape::TapeDrive;
  constexpr auto kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_TRUE(TapeDrive::RangeContains(5, 10, 5, 10));
  EXPECT_TRUE(TapeDrive::RangeContains(5, 10, 10, 5));
  EXPECT_FALSE(TapeDrive::RangeContains(5, 10, 4, 1));
  EXPECT_FALSE(TapeDrive::RangeContains(5, 10, 10, 6));
  // Regression: the old `start + count <= window_start + window_count`
  // comparison overflowed for huge starts/counts and reported containment.
  EXPECT_FALSE(TapeDrive::RangeContains(0, 10, kMax, 2));
  EXPECT_FALSE(TapeDrive::RangeContains(0, 10, 2, kMax));
  EXPECT_TRUE(TapeDrive::RangeContains(0, kMax, kMax - 1, 1));
}

TEST(TapeDriveWindowTest, UnloadInvalidatesSharedAndCacheWindows) {
  sim::Simulation sim;
  tape::TapeDrive drive("t", tape::TapeDriveModel::DLT4000(), sim.CreateResource("t"));
  tape::TapeVolume volume("vol", kDefaultBlockBytes);

  auto loaded = drive.Load(&volume, 0.0);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto appended = drive.AppendPhantom(100, 0.25, loaded->end);
  ASSERT_TRUE(appended.ok()) << appended.status();

  drive.SetSharedPassWindow(0, 100);
  bool cache_reader_called = false;
  drive.SetCacheWindow(0, 100, [&](BlockIndex, BlockCount, SimSeconds ready) {
    cache_reader_called = true;
    return Result<sim::Interval>(sim::Interval{ready, ready});
  });
  auto multicast = drive.Read(0, 10, appended->end);
  ASSERT_TRUE(multicast.ok()) << multicast.status();
  EXPECT_EQ(drive.stats().blocks_shared, 10u);  // shared window wins
  EXPECT_EQ(drive.stats().blocks_read, 0u);

  // Regression: Unload left both windows pointing at the ejected volume; a
  // re-load of the same volume then served "free" multicast reads for a
  // pass nobody was running. Both windows must die with the mount.
  auto unloaded = drive.Unload(multicast->end);
  ASSERT_TRUE(unloaded.ok()) << unloaded.status();
  EXPECT_FALSE(drive.shared_pass_active());
  EXPECT_FALSE(drive.cache_window_active());
  auto reloaded = drive.Load(&volume, unloaded->end);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  auto physical = drive.Read(0, 10, reloaded->end);
  ASSERT_TRUE(physical.ok()) << physical.status();
  EXPECT_EQ(drive.stats().blocks_read, 10u);
  EXPECT_EQ(drive.stats().blocks_shared, 10u);  // unchanged
  EXPECT_EQ(drive.stats().blocks_cached, 0u);
  EXPECT_FALSE(cache_reader_called);
}

// --- Extent-cache service behavior -----------------------------------------

TEST(ExtentCacheServiceTest, CacheBlocksZeroMatchesAnUnconfiguredSiteBitForBit) {
  auto run = [](bool explicit_zero) {
    SiteConfig config;
    config.with_library = true;
    if (explicit_zero) config.cache_blocks = 0;
    auto site = std::make_unique<Site>(config);
    EXPECT_EQ(site->extent_cache(), nullptr);
    EXPECT_EQ(site->session_disk_blocks(), site->disk_blocks());
    auto workload = PrepareServiceWorkload(site.get(), SmallServiceWorkload(/*phantom=*/true));
    TERTIO_CHECK(workload.ok(), "workload setup failed");
    QueryScheduler scheduler(site.get(), ServicePolicy::kSharedScan);
    for (int j = 0; j < 3; ++j) {
      auto id = scheduler.Submit(RequestFor(site.get(), *workload, j, 0, 0.0));
      TERTIO_CHECK(id.ok(), "submit failed");
    }
    Status ran = scheduler.Run();
    TERTIO_CHECK(ran.ok(), "run failed");
    return scheduler.outcomes();
  };
  auto base = run(/*explicit_zero=*/false);
  auto zero = run(/*explicit_zero=*/true);
  ASSERT_EQ(base.size(), zero.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].completion, zero[i].completion) << i;  // exact
    ExpectBitIdentical(base[i].stats, zero[i].stats, "cache_blocks=0");
    EXPECT_EQ(zero[i].stats.tape_blocks_cached, 0u);
  }
}

TEST(ExtentCacheServiceTest, WarmCacheServesRepeatSScansFromDisk) {
  auto run = [](BlockCount cache_blocks) {
    SiteConfig config;
    config.with_library = true;
    config.cache_blocks = cache_blocks;
    auto site = std::make_unique<Site>(config);
    site->EnableAudit();
    auto workload = PrepareServiceWorkload(site.get(), SmallServiceWorkload(/*phantom=*/true));
    TERTIO_CHECK(workload.ok(), "workload setup failed");
    QueryScheduler scheduler(site.get(), ServicePolicy::kFifo);
    for (int j = 0; j < 3; ++j) {
      auto id = scheduler.Submit(RequestFor(site.get(), *workload, j, 0, 0.0));
      TERTIO_CHECK(id.ok(), "submit failed");
    }
    Status ran = scheduler.Run();
    TERTIO_CHECK(ran.ok(), "run failed");
    TERTIO_CHECK(site->auditor()->clean(), "cache run must stay SimSan-clean");
    ServiceStats stats = scheduler.service_stats();
    TERTIO_CHECK(stats.completed == 3, "all queries must complete");
    return stats;
  };
  // 150 MB of cache comfortably holds the 100 MB S relation.
  SiteConfig defaults;
  ServiceStats cold = run(0);
  ServiceStats warm = run(BytesToBlocks(150 * kMB, defaults.block_bytes));

  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.tape_blocks_cached, 0u);

  // Query 1 misses and fills; queries 2 and 3 read S from disk.
  EXPECT_EQ(warm.cache_misses, 1u);
  EXPECT_EQ(warm.cache_fills, 1u);
  EXPECT_EQ(warm.cache_hits, 2u);
  EXPECT_EQ(warm.cache_evictions, 0u);
  EXPECT_EQ(warm.cached_queries, 2u);
  EXPECT_GT(warm.tape_blocks_cached, 0u);
  EXPECT_EQ(warm.tape_blocks_read + warm.tape_blocks_cached, cold.tape_blocks_read);
  // Two of three S passes moved off tape: at least a 2x drop in tape reads.
  EXPECT_LT(2 * warm.tape_blocks_read, cold.tape_blocks_read);
  EXPECT_LT(warm.makespan, cold.makespan);
}

TEST(ExtentCacheServiceTest, CachedReadsDeliverIdenticalJoinResults) {
  // Full-data mode: blocks served through the cache window must carry the
  // exact payloads a physical tape pass would deliver.
  auto run = [](BlockCount cache_blocks) {
    SiteConfig config;
    config.with_library = true;
    config.cache_blocks = cache_blocks;
    auto site = std::make_unique<Site>(config);
    auto workload = PrepareServiceWorkload(site.get(), SmallServiceWorkload(/*phantom=*/false));
    TERTIO_CHECK(workload.ok(), "workload setup failed");
    QueryScheduler scheduler(site.get(), ServicePolicy::kFifo);
    for (int j = 0; j < 3; ++j) {
      auto id = scheduler.Submit(RequestFor(site.get(), *workload, j, 0, 0.0));
      TERTIO_CHECK(id.ok(), "submit failed");
    }
    Status ran = scheduler.Run();
    TERTIO_CHECK(ran.ok(), "run failed");
    return std::make_pair(scheduler.outcomes(), scheduler.service_stats());
  };
  SiteConfig defaults;
  auto [plain, plain_stats] = run(0);
  auto [cached, cached_stats] = run(BytesToBlocks(1 * kMB, defaults.block_bytes));
  // The cached run really exercised the cache path.
  EXPECT_EQ(cached_stats.cache_hits, 2u);
  EXPECT_GT(cached_stats.tape_blocks_cached, 0u);
  ASSERT_EQ(plain.size(), cached.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    ASSERT_TRUE(plain[i].status.ok()) << plain[i].status;
    ASSERT_TRUE(cached[i].status.ok()) << cached[i].status;
    ASSERT_TRUE(plain[i].stats.output_valid);
    ASSERT_TRUE(cached[i].stats.output_valid);
    EXPECT_EQ(plain[i].stats.output_tuples, cached[i].stats.output_tuples) << i;
    EXPECT_EQ(plain[i].stats.output_checksum, cached[i].stats.output_checksum) << i;
  }
}

}  // namespace
}  // namespace tertio::exec
