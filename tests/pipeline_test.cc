// Unit tests for the pipeline engine (sim/pipeline.h) and the extent
// slicing under it: stage dependencies, Transfer dependency structure
// (lock-step vs streaming), span aggregation, SliceExtents edge cases.

#include <gtest/gtest.h>

#include <vector>

#include "disk/extent.h"
#include "sim/pipeline.h"
#include "sim/resource.h"
#include "sim/trace_report.h"

namespace tertio::sim {
namespace {

// A block device with a fixed per-block cost, for exercising Transfer's
// dependency structure without the real device models.
class FakeDevice final : public BlockSource, public BlockSink {
 public:
  FakeDevice(std::string name, SimSeconds seconds_per_block)
      : resource_(std::move(name)), cost_(seconds_per_block) {}

  Result<Interval> Read(BlockCount offset, BlockCount count, SimSeconds ready,
                        std::vector<BlockPayload>* out) override {
    (void)offset;
    if (out != nullptr) out->resize(((out->size() + count)).value());  // phantom payloads
    return resource_.Schedule(ready, cost_ * static_cast<double>(count.value()));
  }

  Result<Interval> Write(BlockCount offset, BlockCount count, SimSeconds ready,
                         std::vector<BlockPayload>* payloads) override {
    (void)offset;
    (void)payloads;
    return resource_.Schedule(ready, cost_ * static_cast<double>(count.value()));
  }

  std::string_view device() const override { return resource_.name(); }

 private:
  Resource resource_;
  SimSeconds cost_;
};

TEST(PipelineTest, EventIsFlooredAtStart) {
  Pipeline pipe(100.0);
  StageId early = pipe.Event("early", 50.0);
  StageId late = pipe.Event("late", 150.0);
  EXPECT_DOUBLE_EQ((pipe.end(early)).value(), 100.0);
  EXPECT_DOUBLE_EQ((pipe.end(late)).value(), 150.0);
}

TEST(PipelineTest, NoStageSentinelIsIgnoredInDeps) {
  Pipeline pipe(10.0);
  std::vector<StageId> none{kNoStage};
  EXPECT_DOUBLE_EQ((pipe.ReadyAfter(none)).value(), 10.0);
  StageId e = pipe.Event("e", 25.0);
  StageId barrier = pipe.Barrier("sync", {kNoStage, e, kNoStage});
  EXPECT_DOUBLE_EQ((pipe.end(barrier)).value(), 25.0);
}

TEST(PipelineTest, BarrierJoinsChains) {
  Pipeline pipe(0.0);
  StageId a = pipe.Event("a", 7.0);
  StageId b = pipe.Event("b", 12.0);
  StageId barrier = pipe.Barrier("sync", {a, b});
  EXPECT_DOUBLE_EQ((pipe.end(barrier)).value(), 12.0);
  EXPECT_DOUBLE_EQ((pipe.Horizon()).value(), 12.0);
}

// Lock-step: chunk i+1's read waits for write i — the single process of the
// sequential (DT) methods. With a 1 s/block source and 2 s/block sink moving
// 4 blocks in 2-block chunks: read [0,2], write [2,6], read [6,8],
// write [8,12].
TEST(PipelineTest, LockStepTransferAlternatesDevices) {
  FakeDevice src("src", 1.0);
  FakeDevice dst("dst", 2.0);
  Pipeline pipe(0.0);
  Pipeline::TransferPlan plan;
  plan.read_phase = "read";
  plan.write_phase = "write";
  plan.total = 4;
  plan.chunk = 2;
  plan.streaming = false;
  auto result = pipe.Transfer(plan, src, dst);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ((pipe.end(result->last_read)).value(), 8.0);
  EXPECT_DOUBLE_EQ(result->source_done.value(), 8.0);
  EXPECT_DOUBLE_EQ((pipe.end(result->last_write)).value(), 12.0);
  EXPECT_DOUBLE_EQ(result->done.value(), 12.0);
}

// Streaming: the producer runs ahead (read i+1 follows read i); the sink
// trails. Same devices and volume as above: reads [0,2] [2,4], writes
// [2,6] [6,10] — two seconds faster than lock-step.
TEST(PipelineTest, StreamingTransferOverlapsProducerAndConsumer) {
  FakeDevice src("src", 1.0);
  FakeDevice dst("dst", 2.0);
  Pipeline pipe(0.0);
  Pipeline::TransferPlan plan;
  plan.read_phase = "read";
  plan.write_phase = "write";
  plan.total = 4;
  plan.chunk = 2;
  plan.streaming = true;
  auto result = pipe.Transfer(plan, src, dst);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->source_done.value(), 4.0);
  EXPECT_DOUBLE_EQ((pipe.end(result->last_write)).value(), 10.0);
  EXPECT_DOUBLE_EQ(result->done.value(), 10.0);
}

TEST(PipelineTest, TransferTailChunkCoversRemainder) {
  FakeDevice src("src", 1.0);
  FakeDevice dst("dst", 1.0);
  SpanTrace trace;
  Pipeline pipe(0.0, &trace);
  Pipeline::TransferPlan plan;
  plan.read_phase = "read";
  plan.write_phase = "write";
  plan.total = 5;
  plan.chunk = 2;
  plan.streaming = true;
  auto result = pipe.Transfer(plan, src, dst);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(trace.phases().size(), 2u);
  EXPECT_EQ(trace.phases()[0].phase, "read");
  EXPECT_EQ(trace.phases()[0].stage_count, 3u);  // chunks of 2, 2, 1
  EXPECT_EQ(trace.phases()[0].blocks, 5u);
  EXPECT_EQ(trace.phases()[1].blocks, 5u);
}

TEST(PipelineTest, SpanWindowMatchesHorizon) {
  FakeDevice src("src", 1.0);
  FakeDevice dst("dst", 2.0);
  SpanTrace trace;
  trace.set_retain(true);
  Pipeline pipe(5.0, &trace);
  Pipeline::TransferPlan plan;
  plan.read_phase = "read";
  plan.write_phase = "write";
  plan.total = 4;
  plan.chunk = 2;
  plan.streaming = false;
  auto result = pipe.Transfer(plan, src, dst);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(trace.window().start.value(), 5.0);
  EXPECT_DOUBLE_EQ(trace.window().end.value(), (pipe.Horizon()).value());
  EXPECT_EQ(trace.spans().size(), pipe.size());
  EXPECT_EQ(trace.phases()[0].device, "src");
  EXPECT_EQ(trace.phases()[1].device, "dst");
  std::string gantt = RenderSpanGantt(trace);
  EXPECT_NE(gantt.find("read"), std::string::npos);
  EXPECT_NE(gantt.find("write"), std::string::npos);
}

// A device that advertises its steady-state chunk costs through CostProfile,
// with call counters to observe which path Transfer took.
class CoalescibleDevice final : public BlockSource, public BlockSink {
 public:
  CoalescibleDevice(std::string name, SimSeconds seconds_per_block)
      : resource_(std::move(name)), cost_(seconds_per_block) {}

  Result<Interval> Read(BlockCount offset, BlockCount count, SimSeconds ready,
                        std::vector<BlockPayload>* out) override {
    (void)offset;
    if (out != nullptr) out->resize(((out->size() + count)).value());
    ++read_calls_;
    return resource_.Schedule(ready, cost_ * static_cast<double>(count.value()));
  }

  Result<Interval> Write(BlockCount offset, BlockCount count, SimSeconds ready,
                         std::vector<BlockPayload>* payloads) override {
    (void)offset;
    (void)payloads;
    ++write_calls_;
    return resource_.Schedule(ready, cost_ * static_cast<double>(count.value()));
  }

  ChunkCostProfile CostProfile(BlockCount offset, BlockCount chunk,
                               std::uint64_t max_chunks) override {
    (void)offset;
    ChunkCostProfile profile;
    profile.chunks = max_chunks;
    profile.cycle = 1;
    profile.ops_per_chunk = {1};
    profile.ops = {{&resource_, cost_ * static_cast<double>(chunk.value()), 0, "op"}};
    profile.commit = [this](BlockCount committed) { committed_ += committed; };
    return profile;
  }

  std::string_view device() const override { return resource_.name(); }

  Resource& resource() { return resource_; }
  int read_calls() const { return read_calls_; }
  int write_calls() const { return write_calls_; }
  BlockCount committed_chunks() const { return committed_; }

 private:
  Resource resource_;
  SimSeconds cost_;
  int read_calls_ = 0;
  int write_calls_ = 0;
  BlockCount committed_ = 0;
};

// One Transfer over a pair of CoalescibleDevices, with everything a
// bit-identity comparison needs captured by value.
struct CoalesceRun {
  SimSeconds source_done = 0.0;
  SimSeconds done = 0.0;
  SimSeconds horizon = 0.0;
  std::uint64_t coalesced_chunks = 0;
  int read_calls = 0;
  int write_calls = 0;
  BlockCount committed_chunks = 0;
  ResourceStats src_stats;
  ResourceStats dst_stats;
  SpanTrace trace;
};

CoalesceRun RunCoalescibleTransfer(bool allow, bool streaming, BlockCount total,
                                   BlockCount chunk) {
  CoalescibleDevice src("src", 0.125);
  CoalescibleDevice dst("dst", 0.25);
  CoalesceRun run;
  Pipeline pipe(3.0, &run.trace);
  Pipeline::TransferPlan plan;
  plan.read_phase = "read";
  plan.write_phase = "write";
  plan.total = total;
  plan.chunk = chunk;
  plan.streaming = streaming;
  plan.allow_coalescing = allow;
  auto result = pipe.Transfer(plan, src, dst);
  TERTIO_CHECK(result.ok(), "coalescible transfer failed");
  run.source_done = result->source_done;
  run.done = result->done;
  run.horizon = pipe.Horizon();
  run.coalesced_chunks = pipe.coalesced_chunks();
  run.read_calls = src.read_calls();
  run.write_calls = dst.write_calls();
  run.committed_chunks = src.committed_chunks();
  run.src_stats = src.resource().stats();
  run.dst_stats = dst.resource().stats();
  return run;
}

void ExpectBitIdentical(const CoalesceRun& a, const CoalesceRun& b) {
  // Exact comparisons throughout: the fast path's claim is bit-identity,
  // not tolerance-level agreement.
  EXPECT_EQ(a.source_done, b.source_done);
  EXPECT_EQ(a.done, b.done);
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.src_stats.op_count, b.src_stats.op_count);
  EXPECT_EQ(a.src_stats.busy_seconds, b.src_stats.busy_seconds);
  EXPECT_EQ(a.src_stats.horizon, b.src_stats.horizon);
  EXPECT_EQ(a.dst_stats.op_count, b.dst_stats.op_count);
  EXPECT_EQ(a.dst_stats.busy_seconds, b.dst_stats.busy_seconds);
  EXPECT_EQ(a.dst_stats.horizon, b.dst_stats.horizon);
  ASSERT_EQ(a.trace.phases().size(), b.trace.phases().size());
  for (std::size_t i = 0; i < a.trace.phases().size(); ++i) {
    const PhaseSummary& pa = a.trace.phases()[i];
    const PhaseSummary& pb = b.trace.phases()[i];
    EXPECT_EQ(pa.phase, pb.phase);
    EXPECT_EQ(pa.device, pb.device);
    EXPECT_EQ(pa.stage_count, pb.stage_count);
    EXPECT_EQ(pa.blocks, pb.blocks);
    EXPECT_EQ(pa.bytes, pb.bytes);
    EXPECT_EQ(pa.busy_seconds, pb.busy_seconds);
    EXPECT_EQ(pa.window.start, pb.window.start);
    EXPECT_EQ(pa.window.end, pb.window.end);
  }
  EXPECT_EQ(a.trace.window().start, b.trace.window().start);
  EXPECT_EQ(a.trace.window().end, b.trace.window().end);
}

// The tentpole claim: the coalesced fast path commits the same simulated
// seconds and aggregates as the per-chunk loop, while engaging (batching
// nearly all chunks into O(1) endpoint calls).
TEST(PipelineCoalesceTest, CoalescedTransferIsBitIdenticalToPerChunk) {
  for (bool streaming : {false, true}) {
    SCOPED_TRACE(streaming ? "streaming" : "lock-step");
    CoalesceRun fast = RunCoalescibleTransfer(/*allow=*/true, streaming, 64, 4);
    CoalesceRun slow = RunCoalescibleTransfer(/*allow=*/false, streaming, 64, 4);
    EXPECT_EQ(fast.coalesced_chunks, 16u);
    EXPECT_EQ(fast.committed_chunks, 16u);
    EXPECT_EQ(fast.read_calls, 0);
    EXPECT_EQ(fast.write_calls, 0);
    EXPECT_EQ(slow.coalesced_chunks, 0u);
    EXPECT_EQ(slow.read_calls, 16);
    EXPECT_EQ(slow.write_calls, 16);
    ExpectBitIdentical(fast, slow);
  }
}

// A total that is not a chunk multiple leaves a tail chunk; the batch covers
// the full chunks and the tail runs per-chunk, with identical results.
TEST(PipelineCoalesceTest, TailChunkRunsPerChunkAfterTheBatch) {
  CoalesceRun fast = RunCoalescibleTransfer(/*allow=*/true, /*streaming=*/true, 61, 4);
  CoalesceRun slow = RunCoalescibleTransfer(/*allow=*/false, /*streaming=*/true, 61, 4);
  EXPECT_EQ(fast.coalesced_chunks, 15u);
  EXPECT_EQ(fast.read_calls, 1);  // the 1-block tail
  ExpectBitIdentical(fast, slow);
}

// Retained span lists need one span per stage, which a batch cannot supply:
// a retaining trace must force the per-chunk path.
TEST(PipelineCoalesceTest, RetainedTraceForcesPerChunkPath) {
  CoalescibleDevice src("src", 1.0);
  CoalescibleDevice dst("dst", 1.0);
  SpanTrace trace;
  trace.set_retain(true);
  Pipeline pipe(0.0, &trace);
  Pipeline::TransferPlan plan;
  plan.read_phase = "read";
  plan.write_phase = "write";
  plan.total = 8;
  plan.chunk = 2;
  plan.streaming = true;
  auto result = pipe.Transfer(plan, src, dst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(pipe.coalesced_chunks(), 0u);
  EXPECT_EQ(src.read_calls(), 4);
  EXPECT_EQ(trace.spans().size(), 8u);
}

// A per-op device trace (Resource::EnableTrace) also cannot be reconstructed
// from a batch; a traced resource vetoes coalescing at the slot level.
TEST(PipelineCoalesceTest, TracedResourceForcesPerChunkPath) {
  CoalescibleDevice src("src", 1.0);
  CoalescibleDevice dst("dst", 1.0);
  src.resource().EnableTrace();
  Pipeline pipe(0.0);
  Pipeline::TransferPlan plan;
  plan.read_phase = "read";
  plan.write_phase = "write";
  plan.total = 8;
  plan.chunk = 2;
  plan.streaming = true;
  auto result = pipe.Transfer(plan, src, dst);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(pipe.coalesced_chunks(), 0u);
  EXPECT_EQ(src.resource().trace().size(), 4u);
}

class SliceExtentsTest : public ::testing::Test {
 protected:
  // 8 logical blocks: 5 on disk 0 at 10, then 3 on disk 1 at 0.
  disk::ExtentList extents_{{0, 10, 5}, {1, 0, 3}};
};

TEST_F(SliceExtentsTest, ZeroCountSliceIsEmpty) {
  EXPECT_TRUE(disk::SliceExtents(extents_, 0, 0)->empty());
  EXPECT_TRUE(disk::SliceExtents(extents_, 4, 0)->empty());
  EXPECT_TRUE(disk::SliceExtents(extents_, 8, 0)->empty());
}

TEST_F(SliceExtentsTest, SliceWithinOneExtent) {
  auto slice = disk::SliceExtents(extents_, 1, 3);
  ASSERT_TRUE(slice.ok());
  ASSERT_EQ(slice->size(), 1u);
  EXPECT_EQ((*slice)[0], (disk::Extent{0, 11, 3}));
}

TEST_F(SliceExtentsTest, SliceSpansExtentBoundary) {
  auto slice = disk::SliceExtents(extents_, 3, 4);
  ASSERT_TRUE(slice.ok());
  ASSERT_EQ(slice->size(), 2u);
  EXPECT_EQ((*slice)[0], (disk::Extent{0, 13, 2}));
  EXPECT_EQ((*slice)[1], (disk::Extent{1, 0, 2}));
}

TEST_F(SliceExtentsTest, FullSliceReturnsWholeList) {
  EXPECT_EQ(*disk::SliceExtents(extents_, 0, 8), extents_);
}

TEST_F(SliceExtentsTest, OffsetPastEndReturnsInvalidArgument) {
  auto past_end = disk::SliceExtents(extents_, 6, 5);
  ASSERT_FALSE(past_end.ok());
  EXPECT_EQ(past_end.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(past_end.status().message().find("extent slice out of range"), std::string::npos);
  EXPECT_EQ(disk::SliceExtents(extents_, 9, 1).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tertio::sim
