// Unit tests for the pipeline engine (sim/pipeline.h) and the extent
// slicing under it: stage dependencies, Transfer dependency structure
// (lock-step vs streaming), span aggregation, SliceExtents edge cases.

#include <gtest/gtest.h>

#include <vector>

#include "disk/extent.h"
#include "sim/pipeline.h"
#include "sim/resource.h"
#include "sim/trace_report.h"

namespace tertio::sim {
namespace {

// A block device with a fixed per-block cost, for exercising Transfer's
// dependency structure without the real device models.
class FakeDevice final : public BlockSource, public BlockSink {
 public:
  FakeDevice(std::string name, SimSeconds seconds_per_block)
      : resource_(std::move(name)), cost_(seconds_per_block) {}

  Result<Interval> Read(BlockCount offset, BlockCount count, SimSeconds ready,
                        std::vector<BlockPayload>* out) override {
    (void)offset;
    if (out != nullptr) out->resize(out->size() + count);  // phantom payloads
    return resource_.Schedule(ready, cost_ * static_cast<double>(count));
  }

  Result<Interval> Write(BlockCount offset, BlockCount count, SimSeconds ready,
                         std::vector<BlockPayload>* payloads) override {
    (void)offset;
    (void)payloads;
    return resource_.Schedule(ready, cost_ * static_cast<double>(count));
  }

  std::string_view device() const override { return resource_.name(); }

 private:
  Resource resource_;
  SimSeconds cost_;
};

TEST(PipelineTest, EventIsFlooredAtStart) {
  Pipeline pipe(100.0);
  StageId early = pipe.Event("early", 50.0);
  StageId late = pipe.Event("late", 150.0);
  EXPECT_DOUBLE_EQ(pipe.end(early), 100.0);
  EXPECT_DOUBLE_EQ(pipe.end(late), 150.0);
}

TEST(PipelineTest, NoStageSentinelIsIgnoredInDeps) {
  Pipeline pipe(10.0);
  std::vector<StageId> none{kNoStage};
  EXPECT_DOUBLE_EQ(pipe.ReadyAfter(none), 10.0);
  StageId e = pipe.Event("e", 25.0);
  StageId barrier = pipe.Barrier("sync", {kNoStage, e, kNoStage});
  EXPECT_DOUBLE_EQ(pipe.end(barrier), 25.0);
}

TEST(PipelineTest, BarrierJoinsChains) {
  Pipeline pipe(0.0);
  StageId a = pipe.Event("a", 7.0);
  StageId b = pipe.Event("b", 12.0);
  StageId barrier = pipe.Barrier("sync", {a, b});
  EXPECT_DOUBLE_EQ(pipe.end(barrier), 12.0);
  EXPECT_DOUBLE_EQ(pipe.Horizon(), 12.0);
}

// Lock-step: chunk i+1's read waits for write i — the single process of the
// sequential (DT) methods. With a 1 s/block source and 2 s/block sink moving
// 4 blocks in 2-block chunks: read [0,2], write [2,6], read [6,8],
// write [8,12].
TEST(PipelineTest, LockStepTransferAlternatesDevices) {
  FakeDevice src("src", 1.0);
  FakeDevice dst("dst", 2.0);
  Pipeline pipe(0.0);
  Pipeline::TransferPlan plan;
  plan.read_phase = "read";
  plan.write_phase = "write";
  plan.total = 4;
  plan.chunk = 2;
  plan.streaming = false;
  auto result = pipe.Transfer(plan, src, dst);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(pipe.end(result->last_read), 8.0);
  EXPECT_DOUBLE_EQ(result->source_done, 8.0);
  EXPECT_DOUBLE_EQ(pipe.end(result->last_write), 12.0);
  EXPECT_DOUBLE_EQ(result->done, 12.0);
}

// Streaming: the producer runs ahead (read i+1 follows read i); the sink
// trails. Same devices and volume as above: reads [0,2] [2,4], writes
// [2,6] [6,10] — two seconds faster than lock-step.
TEST(PipelineTest, StreamingTransferOverlapsProducerAndConsumer) {
  FakeDevice src("src", 1.0);
  FakeDevice dst("dst", 2.0);
  Pipeline pipe(0.0);
  Pipeline::TransferPlan plan;
  plan.read_phase = "read";
  plan.write_phase = "write";
  plan.total = 4;
  plan.chunk = 2;
  plan.streaming = true;
  auto result = pipe.Transfer(plan, src, dst);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->source_done, 4.0);
  EXPECT_DOUBLE_EQ(pipe.end(result->last_write), 10.0);
  EXPECT_DOUBLE_EQ(result->done, 10.0);
}

TEST(PipelineTest, TransferTailChunkCoversRemainder) {
  FakeDevice src("src", 1.0);
  FakeDevice dst("dst", 1.0);
  SpanTrace trace;
  Pipeline pipe(0.0, &trace);
  Pipeline::TransferPlan plan;
  plan.read_phase = "read";
  plan.write_phase = "write";
  plan.total = 5;
  plan.chunk = 2;
  plan.streaming = true;
  auto result = pipe.Transfer(plan, src, dst);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(trace.phases().size(), 2u);
  EXPECT_EQ(trace.phases()[0].phase, "read");
  EXPECT_EQ(trace.phases()[0].stage_count, 3u);  // chunks of 2, 2, 1
  EXPECT_EQ(trace.phases()[0].blocks, 5u);
  EXPECT_EQ(trace.phases()[1].blocks, 5u);
}

TEST(PipelineTest, SpanWindowMatchesHorizon) {
  FakeDevice src("src", 1.0);
  FakeDevice dst("dst", 2.0);
  SpanTrace trace;
  trace.set_retain(true);
  Pipeline pipe(5.0, &trace);
  Pipeline::TransferPlan plan;
  plan.read_phase = "read";
  plan.write_phase = "write";
  plan.total = 4;
  plan.chunk = 2;
  plan.streaming = false;
  auto result = pipe.Transfer(plan, src, dst);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(trace.window().start, 5.0);
  EXPECT_DOUBLE_EQ(trace.window().end, pipe.Horizon());
  EXPECT_EQ(trace.spans().size(), pipe.size());
  EXPECT_EQ(trace.phases()[0].device, "src");
  EXPECT_EQ(trace.phases()[1].device, "dst");
  std::string gantt = RenderSpanGantt(trace);
  EXPECT_NE(gantt.find("read"), std::string::npos);
  EXPECT_NE(gantt.find("write"), std::string::npos);
}

class SliceExtentsTest : public ::testing::Test {
 protected:
  // 8 logical blocks: 5 on disk 0 at 10, then 3 on disk 1 at 0.
  disk::ExtentList extents_{{0, 10, 5}, {1, 0, 3}};
};

TEST_F(SliceExtentsTest, ZeroCountSliceIsEmpty) {
  EXPECT_TRUE(disk::SliceExtents(extents_, 0, 0)->empty());
  EXPECT_TRUE(disk::SliceExtents(extents_, 4, 0)->empty());
  EXPECT_TRUE(disk::SliceExtents(extents_, 8, 0)->empty());
}

TEST_F(SliceExtentsTest, SliceWithinOneExtent) {
  auto slice = disk::SliceExtents(extents_, 1, 3);
  ASSERT_TRUE(slice.ok());
  ASSERT_EQ(slice->size(), 1u);
  EXPECT_EQ((*slice)[0], (disk::Extent{0, 11, 3}));
}

TEST_F(SliceExtentsTest, SliceSpansExtentBoundary) {
  auto slice = disk::SliceExtents(extents_, 3, 4);
  ASSERT_TRUE(slice.ok());
  ASSERT_EQ(slice->size(), 2u);
  EXPECT_EQ((*slice)[0], (disk::Extent{0, 13, 2}));
  EXPECT_EQ((*slice)[1], (disk::Extent{1, 0, 2}));
}

TEST_F(SliceExtentsTest, FullSliceReturnsWholeList) {
  EXPECT_EQ(*disk::SliceExtents(extents_, 0, 8), extents_);
}

TEST_F(SliceExtentsTest, OffsetPastEndReturnsInvalidArgument) {
  auto past_end = disk::SliceExtents(extents_, 6, 5);
  ASSERT_FALSE(past_end.ok());
  EXPECT_EQ(past_end.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(past_end.status().message().find("extent slice out of range"), std::string::npos);
  EXPECT_EQ(disk::SliceExtents(extents_, 9, 1).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tertio::sim
