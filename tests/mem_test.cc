// Unit tests for tertio_mem: budget accounting and double-buffer timing.

#include <gtest/gtest.h>

#include "mem/double_buffer.h"
#include "mem/memory_budget.h"

namespace tertio::mem {
namespace {

TEST(MemoryBudgetTest, ReserveAndRelease) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.Reserve(60, "r-buf").ok());
  EXPECT_TRUE(budget.Reserve(40, "s-buf").ok());
  EXPECT_EQ(budget.free_blocks(), 0u);
  EXPECT_EQ(budget.ReservedUnder("r-buf"), 60u);
  EXPECT_TRUE(budget.Release(60, "r-buf").ok());
  EXPECT_EQ(budget.free_blocks(), 60u);
}

TEST(MemoryBudgetTest, OversubscriptionRejected) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.Reserve(100, "all").ok());
  auto status = budget.Reserve(1, "more");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(MemoryBudgetTest, OverReleaseRejected) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.Reserve(10, "a").ok());
  EXPECT_FALSE(budget.Release(11, "a").ok());
  EXPECT_FALSE(budget.Release(1, "unknown").ok());
}

TEST(MemoryBudgetTest, ReleaseAllDropsTag) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.Reserve(10, "a").ok());
  ASSERT_TRUE(budget.Reserve(20, "a").ok());
  EXPECT_EQ(budget.ReservedUnder("a"), 30u);
  EXPECT_TRUE(budget.ReleaseAll("a").ok());
  EXPECT_EQ(budget.reserved_blocks(), 0u);
  EXPECT_TRUE(budget.ReleaseAll("a").ok());  // idempotent
}

TEST(MemoryBudgetTest, PeakTracksHighWaterMark) {
  MemoryBudget budget(100);
  ASSERT_TRUE(budget.Reserve(70, "a").ok());
  ASSERT_TRUE(budget.Release(50, "a").ok());
  ASSERT_TRUE(budget.Reserve(30, "b").ok());
  EXPECT_EQ(budget.peak_reserved_blocks(), 70u);
}

TEST(InterleavedBufferTest, InitialSpaceIsFreeAtTimeZero) {
  InterleavedBuffer buf(100);
  auto t = buf.AcquireFree(100);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t.value().value(), 0.0);
  EXPECT_EQ(buf.occupied_blocks(), 100u);
}

TEST(InterleavedBufferTest, AcquireWaitsForRelease) {
  InterleavedBuffer buf(100);
  ASSERT_TRUE(buf.AcquireFree(100).ok());
  // Consumer frees 40 blocks at t=10 and 60 at t=20.
  ASSERT_TRUE(buf.Release(40, 10.0).ok());
  ASSERT_TRUE(buf.Release(60, 20.0).ok());
  // Producer claiming 30 gets space freed at t=10.
  EXPECT_DOUBLE_EQ(buf.AcquireFree(30)->value(), 10.0);
  // Next 20: 10 remain from the t=10 release, 10 from t=20 — bound by t=20.
  EXPECT_DOUBLE_EQ(buf.AcquireFree(20)->value(), 20.0);
}

TEST(InterleavedBufferTest, OverAcquireRejected) {
  InterleavedBuffer buf(10);
  ASSERT_TRUE(buf.AcquireFree(10).ok());
  EXPECT_EQ(buf.AcquireFree(1).status().code(), StatusCode::kResourceExhausted);
}

TEST(InterleavedBufferTest, OverReleaseRejected) {
  InterleavedBuffer buf(10);
  ASSERT_TRUE(buf.AcquireFree(5).ok());
  EXPECT_FALSE(buf.Release(6, 1.0).ok());
}

TEST(InterleavedBufferTest, ReleaseTimesMustBeMonotone) {
  InterleavedBuffer buf(10);
  ASSERT_TRUE(buf.AcquireFree(10).ok());
  ASSERT_TRUE(buf.Release(5, 10.0).ok());
  EXPECT_FALSE(buf.Release(5, 5.0).ok());
}

TEST(InterleavedBufferTest, SteadyStatePipelinesAtFullCapacity) {
  // The Section 4 claim: with interleaved double-buffering the chunk size
  // stays at the full buffer size and utilization near 100%. Simulate a
  // producer/consumer where the consumer frees space in quarters.
  InterleavedBuffer buf(80);
  SimSeconds produce_ready = buf.AcquireFree(80).value();
  EXPECT_DOUBLE_EQ(produce_ready.value(), 0.0);
  // Consumer drains in 4 quarters finishing at t = 10, 20, 30, 40.
  for (int q = 1; q <= 4; ++q) {
    ASSERT_TRUE(buf.Release(20, 10.0 * q).ok());
  }
  // Producer of the next full-size chunk can finish acquiring by t=40 — the
  // whole 80-block chunk again, not 40 as split buffering would force.
  EXPECT_DOUBLE_EQ(buf.AcquireFree(80)->value(), 40.0);
  EXPECT_EQ(buf.occupied_blocks(), 80u);
}

TEST(SplitDoubleBufferTest, AlternatesHalves) {
  SplitDoubleBuffer db;
  EXPECT_DOUBLE_EQ((db.FreeAt(0)).value(), 0.0);
  db.SetBusyUntil(0, 15.0);
  db.SetBusyUntil(1, 25.0);
  EXPECT_DOUBLE_EQ((db.FreeAt(2)).value(), 15.0);  // buffer 0 again
  EXPECT_DOUBLE_EQ((db.FreeAt(3)).value(), 25.0);
}

}  // namespace
}  // namespace tertio::mem
