// Unit tests for tertio_relation: schema, block codec, tuples, generator.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "relation/block.h"
#include "relation/generator.h"
#include "relation/relation.h"
#include "relation/schema.h"
#include "relation/tuple.h"
#include "tape/tape_volume.h"

namespace tertio::rel {
namespace {

constexpr ByteCount kBlock = 1024;

TEST(SchemaTest, OffsetsAndRecordBytes) {
  auto schema = Schema::Create({{"a", ColumnType::kInt64, 0},
                                {"b", ColumnType::kDouble, 0},
                                {"c", ColumnType::kFixedChar, 12}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->record_bytes(), 28u);
  EXPECT_EQ(schema->offset(0), 0u);
  EXPECT_EQ(schema->offset(1), 8u);
  EXPECT_EQ(schema->offset(2), 16u);
  EXPECT_EQ(schema->FindColumn("c").value(), 2u);
  EXPECT_FALSE(schema->FindColumn("missing").ok());
}

TEST(SchemaTest, EmptyAndZeroWidthRejected) {
  EXPECT_FALSE(Schema::Create({}).ok());
  EXPECT_FALSE(Schema::Create({{"bad", ColumnType::kFixedChar, 0}}).ok());
}

TEST(SchemaTest, KeyPayloadHasRequestedWidth) {
  Schema schema = Schema::KeyPayload(100);
  EXPECT_EQ(schema.record_bytes(), 100u);
  EXPECT_EQ(schema.column(0).name, "key");
}

TEST(SchemaTest, Equality) {
  EXPECT_TRUE(Schema::KeyPayload(100) == Schema::KeyPayload(100));
  EXPECT_FALSE(Schema::KeyPayload(100) == Schema::KeyPayload(99));
}

TEST(SchemaTest, TuplesPerBlockAccountsForHeader) {
  Schema schema = Schema::KeyPayload(100);
  // (1024 - 8) / 100 = 10
  EXPECT_EQ(TuplesPerBlock(schema, kBlock), 10u);
}

TEST(TupleTest, BuilderRoundTrips) {
  auto schema = Schema::Create({{"k", ColumnType::kInt64, 0},
                                {"v", ColumnType::kDouble, 0},
                                {"s", ColumnType::kFixedChar, 8}});
  ASSERT_TRUE(schema.ok());
  TupleBuilder builder(&schema.value());
  builder.SetInt64(0, -42).SetDouble(1, 2.5).SetFixedChar(2, "hi");
  Tuple tuple(builder.bytes(), &schema.value());
  EXPECT_EQ(tuple.GetInt64(0), -42);
  EXPECT_DOUBLE_EQ(tuple.GetDouble(1), 2.5);
  EXPECT_EQ(tuple.GetFixedChar(2).substr(0, 2), "hi");
  EXPECT_EQ(tuple.GetFixedChar(2)[2], '\0');  // zero padded
}

TEST(TupleTest, FixedCharTruncatesLongInput) {
  auto schema = Schema::Create({{"s", ColumnType::kFixedChar, 4}});
  ASSERT_TRUE(schema.ok());
  TupleBuilder builder(&schema.value());
  builder.SetFixedChar(0, "abcdefgh");
  Tuple tuple(builder.bytes(), &schema.value());
  EXPECT_EQ(tuple.GetFixedChar(0), "abcd");
}

TEST(BlockTest, BuildAndReadBack) {
  Schema schema = Schema::KeyPayload(100);
  BlockBuilder builder(&schema, kBlock);
  EXPECT_EQ(builder.capacity(), 10u);
  TupleBuilder tuple(&schema);
  for (int i = 0; i < 7; ++i) {
    tuple.SetInt64(0, i * 11);
    ASSERT_TRUE(builder.Append(tuple.bytes()).ok());
  }
  BlockPayload payload = builder.Finish();
  EXPECT_EQ(payload->size(), kBlock);
  auto reader = BlockReader::Open(payload, &schema);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->record_count(), 7u);
  Tuple third(reader->record(2), &schema);
  EXPECT_EQ(third.GetInt64(0), 22);
}

TEST(BlockTest, BuilderResetsAfterFinish) {
  Schema schema = Schema::KeyPayload(100);
  BlockBuilder builder(&schema, kBlock);
  TupleBuilder tuple(&schema);
  ASSERT_TRUE(builder.Append(tuple.bytes()).ok());
  builder.Finish();
  EXPECT_TRUE(builder.empty());
  ASSERT_TRUE(builder.Append(tuple.bytes()).ok());
  auto reader = BlockReader::Open(builder.Finish(), &schema);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->record_count(), 1u);
}

TEST(BlockTest, FullBlockRejectsAppend) {
  Schema schema = Schema::KeyPayload(100);
  BlockBuilder builder(&schema, kBlock);
  TupleBuilder tuple(&schema);
  for (BlockCount i = 0; i < builder.capacity(); ++i) {
    ASSERT_TRUE(builder.Append(tuple.bytes()).ok());
  }
  EXPECT_TRUE(builder.full());
  EXPECT_EQ(builder.Append(tuple.bytes()).code(), StatusCode::kResourceExhausted);
}

TEST(BlockTest, WrongRecordSizeRejected) {
  Schema schema = Schema::KeyPayload(100);
  BlockBuilder builder(&schema, kBlock);
  std::vector<uint8_t> wrong(99);
  EXPECT_FALSE(builder.Append(wrong).ok());
}

TEST(BlockTest, ReaderRejectsGarbage) {
  Schema schema = Schema::KeyPayload(100);
  EXPECT_FALSE(BlockReader::Open(nullptr, &schema).ok());  // phantom
  EXPECT_FALSE(BlockReader::Open(MakePayload(std::vector<uint8_t>(4, 0)), &schema).ok());
  EXPECT_FALSE(
      BlockReader::Open(MakePayload(std::vector<uint8_t>(kBlock.value(), 0xFF)), &schema).ok());
}

TEST(GeneratorTest, SequentialKeysAreUnique) {
  tape::TapeVolume vol("t", kBlock);
  GeneratorConfig config;
  config.name = "r";
  config.tuple_count = 250;
  config.keys = KeySequence::kSequentialUnique;
  config.compressibility = 0.0;
  auto relation = GenerateOnTape(config, &vol);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->tuple_count, 250u);
  EXPECT_EQ(relation->blocks, 25u);  // 10 tuples per 1 KiB block
  EXPECT_EQ(vol.size_blocks(), 25u);

  std::vector<BlockPayload> blocks;
  for (BlockIndex i = 0; i < vol.size_blocks(); ++i) {
    blocks.push_back(vol.ReadBlock(i).value());
  }
  std::set<int64_t> keys;
  ASSERT_TRUE(ForEachTuple(blocks, &relation->schema, [&](const Tuple& t) {
                keys.insert(t.GetInt64(0));
              }).ok());
  EXPECT_EQ(keys.size(), 250u);
  EXPECT_EQ(*keys.begin(), 0);
  EXPECT_EQ(*keys.rbegin(), 249);
}

TEST(GeneratorTest, ForeignKeysStayInDomain) {
  tape::TapeVolume vol("t", kBlock);
  GeneratorConfig config;
  config.tuple_count = 1000;
  config.keys = KeySequence::kForeignKeyUniform;
  config.key_domain = 50;
  auto relation = GenerateOnTape(config, &vol);
  ASSERT_TRUE(relation.ok());
  std::vector<BlockPayload> blocks;
  for (BlockIndex i = 0; i < vol.size_blocks(); ++i) {
    blocks.push_back(vol.ReadBlock(i).value());
  }
  std::map<int64_t, int> histogram;
  ASSERT_TRUE(ForEachTuple(blocks, &relation->schema, [&](const Tuple& t) {
                histogram[t.GetInt64(0)]++;
              }).ok());
  for (const auto& [key, count] : histogram) {
    EXPECT_GE(key, 0);
    EXPECT_LT(key, 50);
  }
  // Uniform: every key should appear (1000 draws over 50 keys).
  EXPECT_EQ(histogram.size(), 50u);
}

TEST(GeneratorTest, ZipfIsSkewed) {
  tape::TapeVolume vol("t", kBlock);
  GeneratorConfig config;
  config.tuple_count = 5000;
  config.keys = KeySequence::kZipf;
  config.key_domain = 1000;
  config.zipf_theta = 1.0;
  auto relation = GenerateOnTape(config, &vol);
  ASSERT_TRUE(relation.ok());
  std::vector<BlockPayload> blocks;
  for (BlockIndex i = 0; i < vol.size_blocks(); ++i) {
    blocks.push_back(vol.ReadBlock(i).value());
  }
  std::map<int64_t, uint64_t> histogram;
  ASSERT_TRUE(ForEachTuple(blocks, &relation->schema, [&](const Tuple& t) {
                histogram[t.GetInt64(0)]++;
              }).ok());
  uint64_t max_count = 0;
  for (const auto& [key, count] : histogram) max_count = std::max(max_count, count);
  // The hottest key is far above the uniform expectation of 5 per key.
  EXPECT_GT(max_count, 50u);
}

TEST(GeneratorTest, PhantomModeWritesNoBytes) {
  tape::TapeVolume vol("t", kBlock);
  GeneratorConfig config;
  config.tuple_count = 10'000'000;  // 10M tuples: instant in phantom mode
  config.phantom = true;
  auto relation = GenerateOnTape(config, &vol);
  ASSERT_TRUE(relation.ok());
  EXPECT_TRUE(relation->phantom);
  EXPECT_EQ(relation->blocks, vol.size_blocks());
  EXPECT_EQ(vol.ReadBlock(0).value(), nullptr);
}

TEST(GeneratorTest, DeterministicAcrossRuns) {
  GeneratorConfig config;
  config.tuple_count = 100;
  config.keys = KeySequence::kUniformRandom;
  config.key_domain = 1000;
  config.seed = 7;
  tape::TapeVolume v1("a", kBlock), v2("b", kBlock);
  ASSERT_TRUE(GenerateOnTape(config, &v1).ok());
  ASSERT_TRUE(GenerateOnTape(config, &v2).ok());
  for (BlockIndex i = 0; i < v1.size_blocks(); ++i) {
    EXPECT_EQ(*v1.ReadBlock(i).value(), *v2.ReadBlock(i).value());
  }
}

TEST(GeneratorTest, StartBlockTracksAppendPosition) {
  tape::TapeVolume vol("t", kBlock);
  ASSERT_TRUE(vol.AppendPhantom(17, 0.0).ok());
  GeneratorConfig config;
  config.tuple_count = 30;
  auto relation = GenerateOnTape(config, &vol);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->start_block, 17u);
}

TEST(GeneratorTest, InvalidConfigRejected) {
  tape::TapeVolume vol("t", kBlock);
  GeneratorConfig config;
  config.record_bytes = 8;  // no room for payload
  EXPECT_FALSE(GenerateOnTape(config, &vol).ok());
  config = GeneratorConfig{};
  config.compressibility = 1.0;
  EXPECT_FALSE(GenerateOnTape(config, &vol).ok());
  EXPECT_FALSE(GenerateOnTape(GeneratorConfig{}, nullptr).ok());
}

TEST(GeneratorTest, CountTuplesMatchesDescriptor) {
  tape::TapeVolume vol("t", kBlock);
  GeneratorConfig config;
  config.tuple_count = 123;
  auto relation = GenerateOnTape(config, &vol);
  ASSERT_TRUE(relation.ok());
  std::vector<BlockPayload> blocks;
  for (BlockIndex i = 0; i < vol.size_blocks(); ++i) {
    blocks.push_back(vol.ReadBlock(i).value());
  }
  EXPECT_EQ(CountTuples(blocks, &relation->schema).value(), 123u);
}

}  // namespace
}  // namespace tertio::rel
