// Unit tests for tertio_disk: disk model, volume, allocator, striped group.

#include <gtest/gtest.h>

#include "disk/allocator.h"
#include "disk/disk_model.h"
#include "disk/disk_volume.h"
#include "disk/striped_group.h"
#include "sim/simulation.h"

namespace tertio::disk {
namespace {

constexpr ByteCount kBlock = 1000;

TEST(DiskModelTest, TransferSeconds) {
  DiskModel m = DiskModel::Ideal(1000.0);
  EXPECT_DOUBLE_EQ((m.TransferSeconds(5000)).value(), 5.0);
}

TEST(DiskVolumeTest, SequentialRequestsSkipPositioning) {
  sim::Simulation sim;
  DiskModel m = DiskModel::QuantumFireball1080();
  DiskVolume disk("d0", m, sim.CreateResource("d0"), 100, kBlock);
  auto a = disk.Write(0, 10, 0.0);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR((a->duration()).value(), (m.positioning_seconds + m.TransferSeconds(10 * kBlock)).value(), 1e-12);
  auto b = disk.Write(10, 10, a->end);  // continues sequentially
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR((b->duration()).value(), (m.TransferSeconds(10 * kBlock)).value(), 1e-12);
  EXPECT_EQ(disk.stats().positioned_requests, 1u);
  EXPECT_EQ(disk.stats().requests, 2u);
}

TEST(DiskVolumeTest, DiscontiguousRequestPaysPositioning) {
  sim::Simulation sim;
  DiskModel m = DiskModel::QuantumFireball1080();
  DiskVolume disk("d0", m, sim.CreateResource("d0"), 100, kBlock);
  ASSERT_TRUE(disk.Write(0, 10, 0.0).ok());
  auto b = disk.Read(50, 10, 100.0);
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR((b->duration()).value(), (m.positioning_seconds + m.TransferSeconds(10 * kBlock)).value(), 1e-12);
  EXPECT_EQ(disk.stats().positioned_requests, 2u);
}

TEST(DiskVolumeTest, ThirtyBlockRequestsMakePositioningNegligible) {
  // The paper's Section 3.2 claim: with requests of >= 30 blocks, seek and
  // rotational latency play "a relatively minor role" against transfer cost.
  DiskModel m = DiskModel::QuantumFireball1080();
  double transfer = m.TransferSeconds(30 * kDefaultBlockBytes).value();
  EXPECT_LT(m.positioning_seconds / (transfer + m.positioning_seconds), 0.25);
}

TEST(DiskVolumeTest, DataRoundTrips) {
  sim::Simulation sim;
  DiskVolume disk("d0", DiskModel::Ideal(1e6), sim.CreateResource("d0"), 10, kBlock);
  std::vector<BlockPayload> payloads{MakePayload(std::vector<uint8_t>(kBlock.value(), 0xAA)),
                                     MakePayload(std::vector<uint8_t>(kBlock.value(), 0xBB))};
  ASSERT_TRUE(disk.Write(3, 2, 0.0, payloads.data()).ok());
  std::vector<BlockPayload> out;
  ASSERT_TRUE(disk.Read(3, 2, 1.0, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ((*out[0])[0], 0xAA);
  EXPECT_EQ((*out[1])[0], 0xBB);
}

TEST(DiskVolumeTest, OutOfRangeRejected) {
  sim::Simulation sim;
  DiskVolume disk("d0", DiskModel::Ideal(1e6), sim.CreateResource("d0"), 10, kBlock);
  EXPECT_FALSE(disk.Read(5, 6, 0.0).ok());
  EXPECT_FALSE(disk.Write(10, 1, 0.0).ok());
}

TEST(AllocatorTest, StripesAcrossDisks) {
  DiskSpaceAllocator alloc({100, 100}, /*stripe_unit=*/10);
  auto extents = alloc.Allocate(40, 0.0, "buf");
  ASSERT_TRUE(extents.ok());
  EXPECT_EQ(TotalBlocks(*extents), 40u);
  // Round-robin in 10-block stripes over 2 disks: 20 blocks on each.
  BlockCount on_disk[2] = {0, 0};
  for (const Extent& e : *extents) on_disk[e.disk] += e.count;
  EXPECT_EQ(on_disk[0], 20u);
  EXPECT_EQ(on_disk[1], 20u);
  EXPECT_EQ(alloc.used_blocks(), 40u);
  EXPECT_EQ(alloc.free_blocks(), 160u);
}

TEST(AllocatorTest, ExhaustionRejected) {
  DiskSpaceAllocator alloc({10, 10}, 4);
  EXPECT_FALSE(alloc.Allocate(21, 0.0, "big").ok());
  ASSERT_TRUE(alloc.Allocate(20, 0.0, "fits").ok());
  EXPECT_FALSE(alloc.Allocate(1, 0.0, "one").ok());
}

TEST(AllocatorTest, FreeCoalescesAndReuses) {
  DiskSpaceAllocator alloc({100}, 10);
  auto a = alloc.Allocate(30, 0.0, "a");
  auto b = alloc.Allocate(30, 0.0, "b");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(alloc.Free(*a, 1.0, "a").ok());
  ASSERT_TRUE(alloc.Free(*b, 2.0, "b").ok());
  EXPECT_EQ(alloc.used_blocks(), 0u);
  // After coalescing, the full 100 blocks are allocatable again.
  auto c = alloc.Allocate(100, 3.0, "c");
  EXPECT_TRUE(c.ok());
}

TEST(AllocatorTest, DiskMaskDedicatesDisks) {
  DiskSpaceAllocator alloc({50, 50}, 10);
  std::vector<bool> only_disk1{false, true};
  auto extents = alloc.Allocate(30, 0.0, "buf", only_disk1);
  ASSERT_TRUE(extents.ok());
  for (const Extent& e : *extents) EXPECT_EQ(e.disk, 1);
  // Mask restricts capacity too.
  EXPECT_FALSE(alloc.Allocate(30, 0.0, "too-big", only_disk1).ok());
}

TEST(AllocatorTest, TraceRecordsUtilization) {
  DiskSpaceAllocator alloc({100}, 10);
  alloc.EnableTrace();
  auto a = alloc.Allocate(40, 1.0, "iter-0");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(alloc.Free(*a, 5.0, "iter-0").ok());
  ASSERT_EQ(alloc.trace().size(), 2u);
  EXPECT_DOUBLE_EQ(alloc.trace()[0].time.value(), 1.0);
  EXPECT_EQ(alloc.trace()[0].delta_blocks, 40);
  EXPECT_EQ(alloc.trace()[0].used_after, 40u);
  EXPECT_EQ(alloc.trace()[1].delta_blocks, -40);
  EXPECT_EQ(alloc.trace()[1].used_after, 0u);
  EXPECT_EQ(alloc.trace()[1].tag, "iter-0");
}

TEST(AllocatorTest, FirstFitKeepsDataPacked) {
  DiskSpaceAllocator alloc({100}, 100);
  auto a = alloc.Allocate(10, 0.0, "a");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(alloc.Free(*a, 1.0, "a").ok());
  auto b = alloc.Allocate(10, 2.0, "b");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)[0].start, 0u);  // reuses the lowest hole
}

TEST(StripedGroupTest, UniformConfigSplitsCapacity) {
  DiskGroupConfig config =
      DiskGroupConfig::Uniform(3, DiskModel::Ideal(1e6), 99, kBlock, /*stripe_unit=*/8);
  EXPECT_EQ(config.disks.size(), 3u);
  EXPECT_EQ(config.per_disk_capacity[0], 33u);
}

TEST(StripedGroupTest, StripedReadUsesAllArmsInParallel) {
  sim::Simulation sim;
  DiskGroupConfig config = DiskGroupConfig::Uniform(2, DiskModel::Ideal(1000.0 * kBlock.value()), 1000,
                                                    kBlock, /*stripe_unit=*/10);
  StripedDiskGroup group(config, &sim);
  auto extents = group.allocator().Allocate(100, 0.0, "data");
  ASSERT_TRUE(extents.ok());
  auto wiv = group.WriteExtents(*extents, 0.0);
  ASSERT_TRUE(wiv.ok());
  // 100 blocks at 1000 blocks/s/disk over 2 disks: ~0.05 s, not 0.1 s.
  EXPECT_NEAR((wiv->duration()).value(), 0.05, 1e-9);
  auto riv = group.ReadExtents(*extents, wiv->end);
  ASSERT_TRUE(riv.ok());
  EXPECT_NEAR((riv->duration()).value(), 0.05, 1e-9);
  EXPECT_DOUBLE_EQ((group.aggregate_rate_bps()).value(),
                   2.0 * 1000.0 * static_cast<double>(kBlock.value()));
}

TEST(StripedGroupTest, PayloadsRoundTripInExtentOrder) {
  sim::Simulation sim;
  DiskGroupConfig config = DiskGroupConfig::Uniform(2, DiskModel::Ideal(1e6), 100, kBlock, 4);
  StripedDiskGroup group(config, &sim);
  auto extents = group.allocator().Allocate(10, 0.0, "data");
  ASSERT_TRUE(extents.ok());
  std::vector<BlockPayload> payloads;
  for (uint8_t i = 0; i < 10; ++i) {
    payloads.push_back(MakePayload(std::vector<uint8_t>(kBlock.value(), i)));
  }
  ASSERT_TRUE(group.WriteExtents(*extents, 0.0, &payloads).ok());
  std::vector<BlockPayload> out;
  ASSERT_TRUE(group.ReadExtents(*extents, 1.0, &out).ok());
  ASSERT_EQ(out.size(), 10u);
  for (uint8_t i = 0; i < 10; ++i) EXPECT_EQ((*out[i])[0], i);
}

TEST(StripedGroupTest, PayloadCountMismatchRejected) {
  sim::Simulation sim;
  DiskGroupConfig config = DiskGroupConfig::Uniform(1, DiskModel::Ideal(1e6), 100, kBlock, 4);
  StripedDiskGroup group(config, &sim);
  auto extents = group.allocator().Allocate(10, 0.0, "data");
  ASSERT_TRUE(extents.ok());
  std::vector<BlockPayload> wrong(3);
  EXPECT_FALSE(group.WriteExtents(*extents, 0.0, &wrong).ok());
}

TEST(StripedGroupTest, TotalStatsAggregate) {
  sim::Simulation sim;
  DiskGroupConfig config = DiskGroupConfig::Uniform(2, DiskModel::Ideal(1e6), 100, kBlock, 4);
  StripedDiskGroup group(config, &sim);
  auto extents = group.allocator().Allocate(20, 0.0, "data");
  ASSERT_TRUE(extents.ok());
  ASSERT_TRUE(group.WriteExtents(*extents, 0.0).ok());
  ASSERT_TRUE(group.ReadExtents(*extents, 1.0).ok());
  DiskStats stats = group.TotalStats();
  EXPECT_EQ(stats.blocks_written, 20u);
  EXPECT_EQ(stats.blocks_read, 20u);
}

}  // namespace
}  // namespace tertio::disk
