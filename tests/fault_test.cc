// Fault model & recovery tests (sim/fault.h and its wiring):
//  - FaultPlan::Parse round-trips a spec and rejects malformed input;
//  - injector streams are deterministic per (seed, device) and replay;
//  - retry cost accounting (reposition + re-read + exponential backoff,
//    skip-and-remap) is exact where the draw sequence is forced;
//  - devices surface kDeviceError after bounded retries, charging the wasted
//    time and delivering nothing;
//  - Pipeline::Transfer / StageWithRetry recover at chunk granularity and
//    checkpoints resume where a failed transfer stopped;
//  - a join under injected faults produces exactly the fault-free result
//    (verified against the in-memory reference join);
//  - regression: TapeLibrary::Mount swap bookkeeping, TapeScheduler
//    mid-batch error requeue.

#include "sim/fault.h"

#include <gtest/gtest.h>

#include "exec/experiment.h"
#include "exec/machine.h"
#include "join/join_common.h"
#include "join/join_method.h"
#include "join/reference_join.h"
#include "relation/generator.h"
#include "sim/pipeline.h"
#include "sim/simulation.h"
#include "tape/tape_library.h"
#include "tape/tape_scheduler.h"

namespace tertio::sim {
namespace {

// ---- FaultPlan::Parse ------------------------------------------------------

TEST(FaultPlanParse, FullSpecRoundTrips) {
  auto plan = FaultPlan::Parse(
      "seed=7,tape-transient=1e-4,tape-bad=1e-6,disk-transient=1e-5,disk-bad=1e-7,"
      "exchange=0.01,retries=6,backoff=0.25,remap=3");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_DOUBLE_EQ(plan->tape.transient_read_error_rate, 1e-4);
  EXPECT_DOUBLE_EQ(plan->tape.bad_block_rate, 1e-6);
  EXPECT_DOUBLE_EQ(plan->disk.transient_read_error_rate, 1e-5);
  EXPECT_DOUBLE_EQ(plan->disk.bad_block_rate, 1e-7);
  EXPECT_DOUBLE_EQ(plan->robot.exchange_failure_rate, 0.01);
  EXPECT_EQ(plan->tape.max_retries, 6);
  EXPECT_EQ(plan->disk.max_retries, 6);
  EXPECT_DOUBLE_EQ((plan->tape.retry_backoff_seconds).value(), 0.25);
  EXPECT_DOUBLE_EQ((plan->disk.remap_seconds).value(), 3.0);
  EXPECT_TRUE(plan->enabled());
}

TEST(FaultPlanParse, EmptySpecIsDisabled) {
  auto plan = FaultPlan::Parse("");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->enabled());
}

TEST(FaultPlanParse, RejectsMalformedInput) {
  EXPECT_EQ(FaultPlan::Parse("tape-transient").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("no-such-key=1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("tape-transient=oops").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("tape-transient=1.5").status().code(),
            StatusCode::kInvalidArgument);  // probabilities live in [0, 1]
  EXPECT_EQ(FaultPlan::Parse("backoff=-1").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("seed=abc").status().code(), StatusCode::kInvalidArgument);
}

// ---- Injector determinism --------------------------------------------------

TEST(FaultInjector, ReplaysExactlyForSameSeedAndDevice) {
  FaultProfile profile;
  profile.transient_read_error_rate = 0.2;
  profile.bad_block_rate = 0.05;
  FaultInjector a(profile, /*plan_seed=*/42, "tapeR");
  FaultInjector b(profile, /*plan_seed=*/42, "tapeR");
  for (int i = 0; i < 32; ++i) {
    auto oa = a.SimulateRead(i * 10, 10, 0.01, 1.0);
    auto ob = b.SimulateRead(i * 10, 10, 0.01, 1.0);
    EXPECT_DOUBLE_EQ((oa.recovery_seconds).value(), ((ob.recovery_seconds)).value());
    EXPECT_EQ(oa.completed, ob.completed);
    EXPECT_EQ(oa.clean_blocks, ob.clean_blocks);
  }
  EXPECT_EQ(a.stats().transient_faults, b.stats().transient_faults);
  EXPECT_EQ(a.stats().bad_blocks_remapped, b.stats().bad_blocks_remapped);
  EXPECT_DOUBLE_EQ((a.stats().recovery_seconds).value(), ((b.stats().recovery_seconds)).value());
}

TEST(FaultInjector, DeviceNameSeparatesStreams) {
  FaultProfile profile;
  profile.transient_read_error_rate = 0.3;
  FaultInjector a(profile, 42, "tapeR");
  FaultInjector b(profile, 42, "tapeS");
  // Same plan seed, different devices: the fault sequences diverge.
  SimSeconds ra = 0, rb = 0;
  for (int i = 0; i < 64; ++i) {
    ra += a.SimulateRead(i * 10, 10, 0.01, 1.0).recovery_seconds;
    rb += b.SimulateRead(i * 10, 10, 0.01, 1.0).recovery_seconds;
  }
  EXPECT_NE(ra, rb);
}

TEST(FaultInjector, BadBlocksArePositionalAndStable) {
  FaultProfile profile;
  profile.bad_block_rate = 0.1;
  FaultInjector a(profile, 9, "disk0");
  FaultInjector b(profile, 9, "disk0");
  int bad = 0;
  for (BlockIndex p = 0; p < 1000; ++p) {
    EXPECT_EQ(a.IsLatentBadBlock(p), b.IsLatentBadBlock(p));
    // A pure function of position: repeated queries agree.
    EXPECT_EQ(a.IsLatentBadBlock(p), a.IsLatentBadBlock(p));
    if (a.IsLatentBadBlock(p)) ++bad;
  }
  EXPECT_GT(bad, 50);   // ~100 expected at rate 0.1
  EXPECT_LT(bad, 200);
}

// ---- Retry cost accounting -------------------------------------------------

TEST(FaultInjector, CleanProfileChargesNothing) {
  FaultInjector injector(FaultProfile{}, 1, "tapeR");
  auto outcome = injector.SimulateRead(0, 1000, 0.01, 1.0);
  EXPECT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.clean_blocks, 1000u);
  EXPECT_DOUBLE_EQ((outcome.recovery_seconds).value(), 0.0);
  EXPECT_EQ(injector.stats().faults(), 0u);
}

TEST(FaultInjector, ExhaustedRetriesChargeExponentialBackoffThenFailHard) {
  // Rate 1.0 forces every attempt to fail: the block burns its full retry
  // budget and fails hard, with each retry charged one wasted re-read, one
  // reposition, and a doubling backoff.
  FaultProfile profile;
  profile.transient_read_error_rate = 1.0;
  profile.max_retries = 2;
  profile.retry_backoff_seconds = 0.5;
  FaultInjector injector(profile, 1, "tapeR");
  constexpr SimSeconds kPerBlock = 0.25;
  constexpr SimSeconds kReposition = 1.5;
  auto outcome = injector.SimulateRead(40, 8, kPerBlock, kReposition);
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.clean_blocks, 0u);
  EXPECT_EQ(outcome.failed_block, 40u);
  // Retry 1: backoff 0.5; retry 2: backoff 1.0. The third attempt exceeds
  // max_retries and fails hard without further charge.
  const SimSeconds expected =
      (kPerBlock + kReposition + 0.5) + (kPerBlock + kReposition + 1.0);
  EXPECT_DOUBLE_EQ((outcome.recovery_seconds).value(), ((expected)).value());
  EXPECT_EQ(injector.stats().transient_faults, 3u);
  EXPECT_EQ(injector.stats().retries, 2u);
  EXPECT_EQ(injector.stats().hard_failures, 1u);
  EXPECT_DOUBLE_EQ((injector.stats().recovery_seconds).value(), ((expected)).value());
}

TEST(FaultInjector, BadBlockChargesOneRemapAndNeverFaultsAgain) {
  FaultProfile profile;
  profile.bad_block_rate = 0.05;
  profile.remap_seconds = 2.0;
  FaultInjector injector(profile, 3, "disk0");
  BlockIndex bad = 0;
  bool found = false;
  for (BlockIndex p = 0; p < 10000 && !found; ++p) {
    if (injector.IsLatentBadBlock(p)) {
      bad = p;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  constexpr SimSeconds kPerBlock = 0.5;
  constexpr SimSeconds kReposition = 1.0;
  auto first = injector.SimulateRead(bad, 1, kPerBlock, kReposition);
  EXPECT_TRUE(first.completed);
  EXPECT_DOUBLE_EQ((first.recovery_seconds).value(), ((kPerBlock + kReposition + 2.0)).value());
  EXPECT_EQ(injector.stats().bad_blocks_remapped, 1u);
  // The defect was remapped: re-reading the same position is now clean.
  EXPECT_FALSE(injector.IsLatentBadBlock(bad));
  auto second = injector.SimulateRead(bad, 1, kPerBlock, kReposition);
  EXPECT_DOUBLE_EQ((second.recovery_seconds).value(), 0.0);
  EXPECT_EQ(injector.stats().bad_blocks_remapped, 1u);
}

TEST(FaultInjector, ExchangeFailuresRetryThenFailHard) {
  FaultProfile profile;
  profile.exchange_failure_rate = 1.0;
  profile.max_retries = 1;
  FaultInjector injector(profile, 1, "robot");
  auto outcome = injector.SimulateExchange(30.0);
  EXPECT_FALSE(outcome.completed);
  EXPECT_EQ(outcome.failed_attempts, 2);
  EXPECT_EQ(injector.stats().exchange_faults, 2u);
  EXPECT_EQ(injector.stats().hard_failures, 1u);
  EXPECT_DOUBLE_EQ((injector.stats().recovery_seconds).value(), 60.0);

  FaultInjector clean(FaultProfile{}, 1, "robot");
  auto ok = clean.SimulateExchange(30.0);
  EXPECT_TRUE(ok.completed);
  EXPECT_EQ(ok.failed_attempts, 0);
}

// ---- Device fault surfaces -------------------------------------------------

TEST(DeviceFaults, TapeReadFailsHardChargesTimeDeliversNothing) {
  Simulation sim;
  tape::TapeVolume volume("t", 1024);
  ASSERT_TRUE(volume.AppendPhantom(100, 0.25).ok());
  tape::TapeDrive drive("tapeR", tape::TapeDriveModel::DLT4000(), sim.CreateResource("tape"));
  ASSERT_TRUE(drive.Load(&volume, 0.0).ok());
  FaultProfile profile;
  profile.transient_read_error_rate = 1.0;
  profile.max_retries = 0;
  FaultInjector injector(profile, 1, "tapeR");
  drive.set_fault_injector(&injector);

  std::vector<BlockPayload> out;
  auto read = drive.Read(0, 50, 0.0, &out);
  EXPECT_EQ(read.status().code(), StatusCode::kDeviceError);
  EXPECT_TRUE(out.empty());
  // The wasted attempt occupies the drive's timeline.
  EXPECT_EQ(drive.resource()->stats().op_count, 2u);  // load + failed read
  EXPECT_EQ(injector.stats().hard_failures, 1u);
}

TEST(DeviceFaults, TapeRecoverySlowsTheReadButDeliversEverything) {
  auto run = [](double rate) {
    Simulation sim;
    tape::TapeVolume volume("t", 1024);
    TERTIO_CHECK(volume.AppendPhantom(2000, 0.25).ok(), "");
    tape::TapeDrive drive("tapeR", tape::TapeDriveModel::DLT4000(),
                          sim.CreateResource("tape"));
    TERTIO_CHECK(drive.Load(&volume, 0.0).ok(), "");
    FaultProfile profile;
    profile.transient_read_error_rate = rate;
    FaultInjector injector(profile, 11, "tapeR");
    if (rate > 0) drive.set_fault_injector(&injector);
    auto read = drive.Read(0, 2000, 0.0, nullptr);
    TERTIO_CHECK(read.ok(), read.status().ToString());
    return read->duration();
  };
  const SimSeconds clean = run(0.0);
  const SimSeconds faulty = run(0.05);
  EXPECT_GT(faulty, clean);
}

TEST(DeviceFaults, DiskReadFailsHardAfterBoundedRetries) {
  Simulation sim;
  disk::DiskVolume disk("disk0", disk::DiskModel::QuantumFireball1080(),
                        sim.CreateResource("disk0"), 1000, 1024);
  FaultProfile profile;
  profile.transient_read_error_rate = 1.0;
  profile.max_retries = 1;
  FaultInjector injector(profile, 5, "disk0");
  disk.set_fault_injector(&injector);
  std::vector<BlockPayload> out;
  auto read = disk.Read(0, 10, 0.0, &out);
  EXPECT_EQ(read.status().code(), StatusCode::kDeviceError);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(injector.stats().hard_failures, 1u);
  EXPECT_EQ(injector.stats().retries, 1u);
  // Writes never consult the injector.
  EXPECT_TRUE(disk.Write(0, 10, 0.0).ok());
}

// ---- Chunk retry and checkpoint resume -------------------------------------

/// A source that fails with kDeviceError on its first `fail_count` reads of
/// `fail_offset`, then succeeds; every read costs one second.
class FlakySource final : public BlockSource {
 public:
  FlakySource(BlockCount fail_offset, int fail_count)
      : fail_offset_(fail_offset), fail_count_(fail_count) {}

  Result<Interval> Read(BlockCount offset, BlockCount count, SimSeconds ready,
                        std::vector<BlockPayload>* out) override {
    reads_.push_back(offset);
    if (offset == fail_offset_ && failures_ < fail_count_) {
      ++failures_;
      return Status::DeviceError("flaky source");
    }
    if (out != nullptr) out->insert(out->end(), count.value(), nullptr);
    return Interval{ready, ready + 1.0};
  }
  std::string_view device() const override { return "flaky"; }

  const std::vector<BlockCount>& reads() const { return reads_; }

 private:
  BlockCount fail_offset_;
  int fail_count_;
  int failures_ = 0;
  std::vector<BlockCount> reads_;
};

class NullSink final : public BlockSink {
 public:
  Result<Interval> Write(BlockCount, BlockCount, SimSeconds ready,
                         std::vector<BlockPayload>*) override {
    return Interval::At(ready);
  }
  std::string_view device() const override { return "null"; }
};

TEST(ChunkRetry, TransferRetriesFailedChunkInPlace) {
  Pipeline pipe(0.0);
  FlakySource source(/*fail_offset=*/4, /*fail_count=*/2);
  NullSink sink;
  Pipeline::TransferPlan plan;
  plan.read_phase = "read";
  plan.write_phase = "write";
  plan.total = 8;
  plan.chunk = 2;
  plan.chunk_retry_limit = 3;
  auto result = pipe.Transfer(plan, source, sink);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(pipe.chunk_retries(), 2u);
  // Chunk at offset 4 was attempted three times; the rest once.
  EXPECT_EQ(source.reads(), (std::vector<BlockCount>{0, 2, 4, 4, 4, 6}));
}

TEST(ChunkRetry, ExhaustedChunkRetriesPropagateTheError) {
  Pipeline pipe(0.0);
  FlakySource source(4, /*fail_count=*/5);
  NullSink sink;
  Pipeline::TransferPlan plan;
  plan.read_phase = "read";
  plan.write_phase = "write";
  plan.total = 8;
  plan.chunk = 2;
  plan.chunk_retry_limit = 1;
  auto result = pipe.Transfer(plan, source, sink);
  EXPECT_EQ(result.status().code(), StatusCode::kDeviceError);
  EXPECT_EQ(pipe.chunk_retries(), 1u);
}

TEST(ChunkRetry, NonDeviceErrorsAreNeverRetried) {
  Pipeline pipe(0.0);
  class BadSource final : public BlockSource {
   public:
    Result<Interval> Read(BlockCount, BlockCount, SimSeconds,
                          std::vector<BlockPayload>*) override {
      ++calls_;
      return Status::InvalidArgument("not retryable");
    }
    std::string_view device() const override { return "bad"; }
    int calls() const { return calls_; }

   private:
    int calls_ = 0;
  } source;
  NullSink sink;
  Pipeline::TransferPlan plan;
  plan.read_phase = "read";
  plan.write_phase = "write";
  plan.total = 4;
  plan.chunk = 2;
  plan.chunk_retry_limit = 5;
  auto result = pipe.Transfer(plan, source, sink);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(source.calls(), 1);
  EXPECT_EQ(pipe.chunk_retries(), 0u);
}

TEST(ChunkRetry, CheckpointResumesWhereTheTransferStopped) {
  Pipeline pipe(0.0);
  FlakySource source(4, /*fail_count=*/2);
  NullSink sink;
  Pipeline::TransferCheckpoint checkpoint;
  Pipeline::TransferPlan plan;
  plan.read_phase = "read";
  plan.write_phase = "write";
  plan.total = 8;
  plan.chunk = 2;
  plan.chunk_retry_limit = 0;  // no in-place retries: fail to the caller
  plan.checkpoint = &checkpoint;
  auto first = pipe.Transfer(plan, source, sink);
  EXPECT_EQ(first.status().code(), StatusCode::kDeviceError);
  EXPECT_EQ(checkpoint.completed_blocks, 4u);  // chunks 0 and 2 completed

  // Re-issue with the same checkpoint: the transfer resumes at block 4
  // (failing once more), then completes — chunks 0 and 2 never re-run.
  plan.chunk_retry_limit = 3;
  auto second = pipe.Transfer(plan, source, sink);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(checkpoint.completed_blocks, 8u);
  EXPECT_EQ(checkpoint.chunk_retries, 1u);
  EXPECT_EQ(source.reads(), (std::vector<BlockCount>{0, 2, 4, 4, 4, 6}));
}

TEST(ChunkRetry, StageWithRetryRecoversBareStages) {
  Pipeline pipe(0.0);
  int failures = 2;
  auto op = [&](SimSeconds ready) -> Result<Interval> {
    if (failures > 0) {
      --failures;
      return Status::DeviceError("flaky stage");
    }
    return Interval{ready, ready + 1.0};
  };
  auto stage = pipe.StageWithRetry("scan", "dev", std::initializer_list<StageId>{}, 4, 0, op,
                                   /*retry_limit=*/3);
  ASSERT_TRUE(stage.ok()) << stage.status();
  EXPECT_EQ(pipe.chunk_retries(), 2u);

  failures = 5;
  auto exhausted = pipe.StageWithRetry("scan", "dev", std::initializer_list<StageId>{}, 4, 0,
                                       op, /*retry_limit=*/1);
  EXPECT_EQ(exhausted.status().code(), StatusCode::kDeviceError);
}

}  // namespace
}  // namespace tertio::sim

// ---- Joins under faults ----------------------------------------------------

namespace tertio::join {
namespace {

constexpr ByteCount kBlock = 1024;

exec::MachineConfig FaultyMachine(const sim::FaultPlan& faults) {
  exec::MachineConfig config;
  config.block_bytes = kBlock;
  config.disk_space_bytes = 64 * kBlock;
  config.memory_bytes = 16 * kBlock;
  config.stripe_unit = 4;
  config.faults = faults;
  return config;
}

struct FaultyRun {
  JoinStats stats;
  JoinOutput reference;
  sim::FaultStats machine_faults;
};

Result<FaultyRun> RunUnderFaults(const sim::FaultPlan& faults, JoinMethodId method,
                                 bool coalesce = true) {
  exec::Machine machine(FaultyMachine(faults));
  FaultyRun run;
  rel::GeneratorConfig rc, sc;
  rc.name = "R";
  rc.tuple_count = 400;
  rc.keys = rel::KeySequence::kSequentialUnique;
  rc.compressibility = 0.25;
  rc.seed = 11;
  sc.name = "S";
  sc.tuple_count = 2000;
  sc.keys = rel::KeySequence::kForeignKeyUniform;
  sc.key_domain = 400;
  sc.compressibility = 0.25;
  sc.seed = 12;
  rel::Relation r, s;
  TERTIO_ASSIGN_OR_RETURN(r, rel::GenerateOnTape(rc, &machine.tape_r()));
  TERTIO_ASSIGN_OR_RETURN(s, rel::GenerateOnTape(sc, &machine.tape_s()));
  machine.MountTapes();
  TERTIO_ASSIGN_OR_RETURN(run.reference, ReferenceJoin(r, s, 0, 0));
  JoinSpec spec;
  spec.r = &r;
  spec.s = &s;
  auto executor = CreateJoinMethod(method);
  JoinContext ctx = machine.context();
  ctx.coalesce_transfers = coalesce;
  TERTIO_ASSIGN_OR_RETURN(run.stats, executor->Execute(spec, ctx));
  run.machine_faults = machine.TotalFaultStats();
  return run;
}

sim::FaultPlan ModeratePlan() {
  sim::FaultPlan plan;
  plan.seed = 7;
  plan.tape.transient_read_error_rate = 0.01;
  plan.tape.bad_block_rate = 0.002;
  plan.disk.transient_read_error_rate = 0.005;
  plan.disk.bad_block_rate = 0.001;
  return plan;
}

class FaultyJoinTest : public ::testing::TestWithParam<JoinMethodId> {};

TEST_P(FaultyJoinTest, RecoveredJoinMatchesReferenceExactly) {
  auto run = RunUnderFaults(ModeratePlan(), GetParam());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->stats.output_valid);
  EXPECT_EQ(run->stats.output_tuples, run->reference.tuples());
  EXPECT_EQ(run->stats.output_checksum, run->reference.checksum());
  // Faults were actually injected, recovered, and surfaced in the stats.
  EXPECT_GT(run->stats.faults_injected, 0u);
  EXPECT_GT(run->stats.fault_retries, 0u);
  EXPECT_GT(run->stats.recovery_seconds, 0.0);
  EXPECT_EQ(run->stats.faults_injected, run->machine_faults.faults());
}

TEST_P(FaultyJoinTest, FaultsOnlySlowTheJoinDown) {
  auto clean = RunUnderFaults(sim::FaultPlan{}, GetParam());
  auto faulty = RunUnderFaults(ModeratePlan(), GetParam());
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(faulty.ok()) << faulty.status();
  EXPECT_EQ(clean->stats.faults_injected, 0u);
  EXPECT_DOUBLE_EQ((clean->stats.recovery_seconds).value(), 0.0);
  EXPECT_GT(faulty->stats.response_seconds, clean->stats.response_seconds);
  EXPECT_EQ(faulty->stats.output_checksum, clean->stats.output_checksum);
}

TEST_P(FaultyJoinTest, FaultyRunsReplayExactly) {
  auto a = RunUnderFaults(ModeratePlan(), GetParam());
  auto b = RunUnderFaults(ModeratePlan(), GetParam());
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_DOUBLE_EQ((a->stats.response_seconds).value(), ((b->stats.response_seconds)).value());
  EXPECT_EQ(a->stats.faults_injected, b->stats.faults_injected);
  EXPECT_EQ(a->stats.fault_retries, b->stats.fault_retries);
  EXPECT_EQ(a->stats.blocks_remapped, b->stats.blocks_remapped);
  EXPECT_DOUBLE_EQ((a->stats.recovery_seconds).value(), ((b->stats.recovery_seconds)).value());
}

TEST_P(FaultyJoinTest, ChunkRetriesRecoverHardDeviceFailures) {
  // No device-level retries at all: every transient fault is a hard failure
  // and only the pipeline's chunk-granular recovery saves the join.
  sim::FaultPlan plan;
  plan.seed = 13;
  plan.tape.transient_read_error_rate = 0.01;
  plan.tape.max_retries = 0;
  plan.disk.transient_read_error_rate = 0.005;
  plan.disk.max_retries = 0;
  auto run = RunUnderFaults(plan, GetParam());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GT(run->stats.chunk_retries, 0u);
  EXPECT_EQ(run->stats.output_tuples, run->reference.tuples());
  EXPECT_EQ(run->stats.output_checksum, run->reference.checksum());
}

TEST_P(FaultyJoinTest, CoalescingToggleIsInvisibleUnderFaults) {
  // With injectors active the coalesced fast path must disengage (batching
  // would skip the per-chunk fault draws and desynchronise the seeded RNG
  // stream), so toggling JoinContext::coalesce_transfers changes nothing:
  // both runs take the per-chunk path and replay each other exactly.
  auto on = RunUnderFaults(ModeratePlan(), GetParam(), /*coalesce=*/true);
  auto off = RunUnderFaults(ModeratePlan(), GetParam(), /*coalesce=*/false);
  ASSERT_TRUE(on.ok()) << on.status();
  ASSERT_TRUE(off.ok()) << off.status();
  EXPECT_GT(on->stats.faults_injected, 0u);
  EXPECT_EQ(on->stats.response_seconds, off->stats.response_seconds);
  EXPECT_EQ(on->stats.step1_seconds, off->stats.step1_seconds);
  EXPECT_EQ(on->stats.step2_seconds, off->stats.step2_seconds);
  EXPECT_EQ(on->stats.faults_injected, off->stats.faults_injected);
  EXPECT_EQ(on->stats.fault_retries, off->stats.fault_retries);
  EXPECT_EQ(on->stats.blocks_remapped, off->stats.blocks_remapped);
  EXPECT_EQ(on->stats.chunk_retries, off->stats.chunk_retries);
  EXPECT_EQ(on->stats.recovery_seconds, off->stats.recovery_seconds);
  EXPECT_EQ(on->stats.disk_requests, off->stats.disk_requests);
  EXPECT_EQ(on->stats.output_checksum, off->stats.output_checksum);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, FaultyJoinTest,
                         ::testing::Values(JoinMethodId::kDtNb, JoinMethodId::kCdtNbMb,
                                           JoinMethodId::kCdtNbDb, JoinMethodId::kDtGh,
                                           JoinMethodId::kCdtGh, JoinMethodId::kCttGh,
                                           JoinMethodId::kTtGh),
                         [](const auto& info) {
                           std::string name(JoinMethodName(info.param));
                           for (char& c : name) {
                             if (c == '-' || c == '/') c = '_';
                           }
                           return name;
                         });

// ---- Coalescing fallback boundary ------------------------------------------

// A fault injector on the device empties its chunk cost profiles: the profile
// is the coalescing contract ("every chunk costs exactly this"), and a faulty
// device cannot promise that without consuming its per-chunk fault draws.
TEST(CoalesceFaultFallback, EnabledInjectorEmptiesTapeCostProfiles) {
  sim::Simulation sim;
  tape::TapeVolume volume("t", kBlock);
  ASSERT_TRUE(volume.AppendPhantom(256, 0.25).ok());
  tape::TapeDrive drive("tapeR", tape::TapeDriveModel::DLT4000(),
                        sim.CreateResource("tape"));
  ASSERT_TRUE(drive.Load(&volume, 0.0).ok());
  EXPECT_GT(drive.ReadCostProfile(0, 8, 16).chunks, 0u);

  sim::FaultProfile profile;
  profile.transient_read_error_rate = 0.01;
  sim::FaultInjector injector(profile, 1, "tapeR");
  drive.set_fault_injector(&injector);
  EXPECT_EQ(drive.ReadCostProfile(0, 8, 16).chunks, 0u);
  EXPECT_EQ(drive.AppendCostProfile(0.25, 8, 16).chunks, 0u);

  // Removing the injector restores the fast path.
  drive.set_fault_injector(nullptr);
  EXPECT_GT(drive.ReadCostProfile(0, 8, 16).chunks, 0u);
}

// End-to-end: on a machine with a fault plan, the shared transfer helpers
// never engage the coalesced path (contrast with the SimSan engagement test
// on a clean machine, where the same staging coalesces most of its chunks).
TEST(CoalesceFaultFallback, FaultyMachineForcesThePerChunkPath) {
  exec::MachineConfig config = exec::MachineConfig::PaperTestbed(50 * kMB, 5400 * kKB);
  config.faults = ModeratePlan();
  exec::Machine machine(config);
  exec::WorkloadConfig workload;
  workload.r_bytes = 18 * kMB;
  workload.s_bytes = 100 * kMB;
  workload.phantom = true;
  auto prepared = exec::PrepareWorkload(&machine, workload);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  JoinContext ctx = machine.context();

  sim::Pipeline pipe(ctx.sim->Horizon(), nullptr, ctx.sim->auditor());
  BlockCount chunk = DefaultTapeChunk(prepared->r);
  auto staged = StageRelationToDisk(ctx, pipe, ctx.drive_r, prepared->r, chunk,
                                    /*concurrent=*/true, "faulty-r", {});
  ASSERT_TRUE(staged.ok()) << staged.status();
  EXPECT_EQ(pipe.coalesced_chunks(), 0u);

  auto scan = ScanDiskAndProbe(ctx, pipe, "r-scan", staged->extents, chunk,
                               {staged->done_stage}, /*phantom=*/true, nullptr, 0,
                               nullptr, nullptr);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(pipe.coalesced_chunks(), 0u);
}

}  // namespace
}  // namespace tertio::join

// ---- Regressions: library mount swap, scheduler requeue --------------------

namespace tertio::tape {
namespace {

constexpr ByteCount kBlock = 1024;

std::unique_ptr<TapeVolume> MakeCartridge(BlockCount blocks) {
  auto volume = std::make_unique<TapeVolume>("cart", kBlock);
  TERTIO_CHECK(volume->AppendPhantom(blocks, 0.25).ok(), "");
  return volume;
}

TEST(TapeLibraryMount, SwapChargesRewindUnloadAndBothRobotTrips) {
  sim::Simulation sim;
  TapeLibrary library(TapeLibraryModel::SmallAutoloader(), sim.CreateResource("robot"));
  const TapeDriveModel model = TapeDriveModel::DLT4000();
  TapeDrive drive("drv", model, sim.CreateResource("tape"));
  ASSERT_TRUE(library.AddCartridge(MakeCartridge(50)).ok());
  ASSERT_TRUE(library.AddCartridge(MakeCartridge(50)).ok());

  auto first = library.Mount(0, &drive, 0.0);
  ASSERT_TRUE(first.ok());
  // Empty drive: one robot trip plus the drive load.
  EXPECT_DOUBLE_EQ((first->duration()).value(),
                   (library.model().exchange_seconds + model.load_seconds).value());

  auto swap = library.Mount(1, &drive, first->end);
  ASSERT_TRUE(swap.ok());
  // Swap: rewind + unload on the drive, eject + inject robot trips, load.
  EXPECT_DOUBLE_EQ((swap->duration()).value(),
                   (model.rewind_seconds + model.load_seconds +
                    2 * library.model().exchange_seconds + model.load_seconds)
                       .value());
  EXPECT_EQ(drive.stats().rewind_count, 1u);
  EXPECT_EQ(drive.stats().load_count, 2u);
  // Bookkeeping: cartridge 0 is home again — another mount of it succeeds.
  sim::Simulation sim2;
  TapeDrive other("other", model, sim2.CreateResource("tape2"));
  EXPECT_TRUE(library.Mount(0, &other, 0.0).ok());
}

TEST(TapeLibraryMount, FailedExchangeLeavesSlotBookkeepingConsistent) {
  sim::Simulation sim;
  TapeLibrary library(TapeLibraryModel::SmallAutoloader(), sim.CreateResource("robot"));
  TapeDrive drive("drv", TapeDriveModel::DLT4000(), sim.CreateResource("tape"));
  ASSERT_TRUE(library.AddCartridge(MakeCartridge(50)).ok());

  sim::FaultProfile profile;
  profile.exchange_failure_rate = 1.0;
  profile.max_retries = 0;
  sim::FaultInjector injector(profile, 1, "robot");
  library.set_fault_injector(&injector);
  auto failed = library.Mount(0, &drive, 0.0);
  EXPECT_EQ(failed.status().code(), StatusCode::kDeviceError);

  // The failed mount must NOT have marked the cartridge as mounted (the old
  // bug set mounted_in before the physical steps succeeded): with the robot
  // healthy again, the same mount goes through.
  library.set_fault_injector(nullptr);
  EXPECT_TRUE(library.Mount(0, &drive, 0.0).ok());
}

TEST(TapeSchedulerBatch, MidBatchErrorKeepsCompletionsAndRequeuesTheRest) {
  sim::Simulation sim;
  TapeVolume volume("t", kBlock);
  ASSERT_TRUE(volume.AppendPhantom(100, 0.25).ok());
  TapeDrive drive("drv", TapeDriveModel::DLT4000(), sim.CreateResource("tape"));
  ASSERT_TRUE(drive.Load(&volume, 0.0).ok());
  TapeScheduler scheduler(&drive, SchedulePolicy::kFifo);
  scheduler.Submit({1, 0, 10});
  scheduler.Submit({2, 90, 50});  // reads past end-of-data: fails
  scheduler.Submit({3, 20, 10});

  auto batch = scheduler.ExecuteBatch(0.0);
  EXPECT_FALSE(batch.ok());
  ASSERT_EQ(batch.completions.size(), 1u);
  EXPECT_EQ(batch.completions.front().id, 1u);
  EXPECT_EQ(batch.requeued, 2u);
  EXPECT_EQ(scheduler.pending(), 2u);

  // The requeued requests stay ahead of later submissions and drain once the
  // offender is fixed (here: dropped and replaced by a valid range).
  scheduler.Submit({4, 40, 10});
  auto retry = scheduler.ExecuteBatch(0.0);
  EXPECT_FALSE(retry.ok());  // the bad request is retried first and fails again
  EXPECT_EQ(retry.completions.size(), 0u);
  EXPECT_EQ(scheduler.pending(), 3u);
}

TEST(TapeSchedulerBatch, DeviceErrorRequeuesEverythingForRetry) {
  sim::Simulation sim;
  TapeVolume volume("t", kBlock);
  ASSERT_TRUE(volume.AppendPhantom(100, 0.25).ok());
  TapeDrive drive("drv", TapeDriveModel::DLT4000(), sim.CreateResource("tape"));
  ASSERT_TRUE(drive.Load(&volume, 0.0).ok());
  sim::FaultProfile profile;
  profile.transient_read_error_rate = 1.0;
  profile.max_retries = 0;
  sim::FaultInjector injector(profile, 1, "drv");
  drive.set_fault_injector(&injector);

  TapeScheduler scheduler(&drive, SchedulePolicy::kFifo);
  scheduler.Submit({1, 0, 10});
  scheduler.Submit({2, 20, 10});
  auto batch = scheduler.ExecuteBatch(0.0);
  EXPECT_EQ(batch.status.code(), StatusCode::kDeviceError);
  EXPECT_TRUE(batch.completions.empty());
  EXPECT_EQ(batch.requeued, 2u);

  // Device healthy again: the queue drains with nothing lost.
  drive.set_fault_injector(nullptr);
  auto retry = scheduler.ExecuteBatch(0.0);
  EXPECT_TRUE(retry.ok());
  EXPECT_EQ(retry.completions.size(), 2u);
  EXPECT_EQ(scheduler.pending(), 0u);
}

TEST(TapeSchedulerBatch, RequeueUnderActiveFaultPlanWithMultipleSubmitters) {
  // Two logical submitters keep feeding the scheduler between batches while
  // an active fault plan makes a fraction of reads hard-fail. No request may
  // be lost or duplicated, and completions gathered before each mid-batch
  // failure must be preserved.
  sim::Simulation sim;
  TapeVolume volume("t", kBlock);
  ASSERT_TRUE(volume.AppendPhantom(200, 0.25).ok());
  TapeDrive drive("drv", TapeDriveModel::DLT4000(), sim.CreateResource("tape"));
  ASSERT_TRUE(drive.Load(&volume, 0.0).ok());
  sim::FaultProfile profile;
  profile.transient_read_error_rate = 0.35;
  profile.max_retries = 0;  // every injected fault is a hard kDeviceError
  sim::FaultInjector injector(profile, 7, "drv");
  drive.set_fault_injector(&injector);

  TapeScheduler scheduler(&drive, SchedulePolicy::kSortedAscending);
  std::uint64_t next_a = 1, next_b = 1000;
  auto submit_round = [&](int count) {
    for (int i = 0; i < count; ++i) {
      // Submitter A reads low addresses, submitter B high ones.
      scheduler.Submit({next_a, (next_a % 10) * 10, 5});
      scheduler.Submit({next_b, 100 + (next_b % 10) * 10, 5});
      ++next_a;
      ++next_b;
    }
  };
  submit_round(3);
  std::uint64_t expected = 6;

  std::map<std::uint64_t, int> completed;
  SimSeconds cursor = 0.0;
  for (int attempt = 0; attempt < 100 && (scheduler.pending() > 0 || expected < 10); ++attempt) {
    if (attempt == 1 || attempt == 2) {
      submit_round(1);  // both submitters add work while earlier requests retry
      expected += 2;
    }
    auto batch = scheduler.ExecuteBatch(cursor);
    for (const auto& completion : batch.completions) {
      completed[completion.id]++;
      cursor = std::max(cursor, completion.interval.end);
    }
    if (!batch.ok()) {
      // Failed + unexecuted requests are back in the queue, nothing dropped.
      EXPECT_EQ(completed.size() + scheduler.pending(), expected);
      EXPECT_GT(batch.requeued, 0u);
    }
  }
  drive.set_fault_injector(nullptr);
  auto drain = scheduler.ExecuteBatch(cursor);
  EXPECT_TRUE(drain.ok());
  for (const auto& completion : drain.completions) completed[completion.id]++;

  EXPECT_EQ(scheduler.pending(), 0u);
  ASSERT_EQ(completed.size(), expected);
  for (const auto& [id, count] : completed) {
    EXPECT_EQ(count, 1) << "request " << id << " completed more than once";
  }
  EXPECT_GT(injector.stats().hard_failures, 0u);
}

}  // namespace
}  // namespace tertio::tape
