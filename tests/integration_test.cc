// Integration tests: whole experiments executed in-process, asserting the
// figure-level properties the paper reports (so a regression in any layer —
// devices, buffering, partitioning, executors — fails here even if every
// unit test still passes).

#include <gtest/gtest.h>

#include <algorithm>

#include "disk/allocator.h"
#include "exec/experiment.h"
#include "exec/machine.h"
#include "join/join_method.h"
#include "query/query.h"
#include "sim/trace_report.h"

namespace tertio {
namespace {

TEST(Figure4Integration, InterleavedBufferingHoldsUtilizationNear100) {
  // Join III of Table 3, allocator trace on; replay the Step II window and
  // require >= 95% total utilization at (almost) every sample — the paper's
  // "upper line, at or near 100%".
  exec::MachineConfig config = exec::MachineConfig::PaperTestbed(500 * kMB, 16 * kMB);
  exec::Machine machine(config);
  machine.disks().allocator().EnableTrace();
  exec::WorkloadConfig workload;
  workload.r_bytes = 2500 * kMB;
  workload.s_bytes = 5000 * kMB;
  workload.phantom = true;
  auto prepared = exec::PrepareWorkload(&machine, workload);
  ASSERT_TRUE(prepared.ok());
  join::JoinSpec spec;
  spec.r = &prepared->r;
  spec.s = &prepared->s;
  join::JoinContext ctx = machine.context();
  auto stats = join::CreateJoinMethod(JoinMethodId::kCttGh)->Execute(spec, ctx);
  ASSERT_TRUE(stats.ok()) << stats.status();

  std::vector<disk::UsageEvent> trace = machine.disks().allocator().trace();
  std::stable_sort(trace.begin(), trace.end(),
                   [](const disk::UsageEvent& a, const disk::UsageEvent& b) {
                     return a.time < b.time;
                   });
  BlockCount capacity = machine.disks().allocator().capacity_blocks();
  SimSeconds begin = stats->step1_seconds;
  SimSeconds end = stats->response_seconds;
  std::int64_t used = 0;
  size_t cursor = 0;
  int samples = 0, high = 0;
  for (int i = 1; i <= 40; ++i) {
    SimSeconds t = begin + (end - begin) * i / 40;
    while (cursor < trace.size() && trace[cursor].time <= t) {
      const auto& event = trace[cursor++];
      if (event.tag.rfind("S-iter", 0) == 0) used += event.delta_blocks;
    }
    // Skip warm-up and final drain samples.
    if (i <= 3 || i >= 38) continue;
    ++samples;
    if (static_cast<double>(used) / static_cast<double>(capacity.value()) >= 0.95) ++high;
  }
  ASSERT_GT(samples, 20);
  EXPECT_GE(high, samples - 1) << "utilization dipped below 95% in steady state";
}

TEST(ParallelIoIntegration, ConcurrentMethodOverlapsDevicesSequentialDoesNot) {
  // Device-level check of the parallel-I/O claim: in CDT-GH the sum of
  // per-device busy time exceeds the response (overlap); in DT-GH it
  // roughly equals it (one device at a time).
  auto busy_over_response = [&](JoinMethodId method) {
    exec::MachineConfig config = exec::MachineConfig::PaperTestbed(60 * kMB, 4 * kMB);
    exec::Machine machine(config);
    exec::WorkloadConfig workload;
    workload.r_bytes = 20 * kMB;
    workload.s_bytes = 120 * kMB;
    workload.phantom = true;
    auto prepared = exec::PrepareWorkload(&machine, workload);
    TERTIO_CHECK(prepared.ok(), "setup failed");
    join::JoinSpec spec;
    spec.r = &prepared->r;
    spec.s = &prepared->s;
    join::JoinContext ctx = machine.context();
    auto stats = join::CreateJoinMethod(method)->Execute(spec, ctx);
    TERTIO_CHECK(stats.ok(), stats.status().ToString());
    double busy = 0.0;
    for (const auto& resource : machine.sim().resources()) {
      busy += resource->stats().busy_seconds.value();
    }
    return busy / stats->response_seconds;
  };
  double sequential = busy_over_response(JoinMethodId::kDtGh);
  double concurrent = busy_over_response(JoinMethodId::kCdtGh);
  EXPECT_LT(sequential, 1.15);            // essentially serialized
  EXPECT_GT(concurrent, sequential + 0.2);  // genuine overlap
}

TEST(EndToEndIntegration, QueryOverAdvisorChosenJoinOnFreshMachine) {
  // The full stack in one shot: machine -> workload -> advisor -> join ->
  // pipelined aggregation, verified against an independent computation.
  exec::MachineConfig config;
  config.block_bytes = 1024;
  config.memory_bytes = 32 * 1024;
  config.disk_space_bytes = 128 * 1024;
  config.stripe_unit = 4;
  exec::Machine machine(config);
  exec::WorkloadConfig workload;
  workload.r_bytes = 40 * 1024;
  workload.s_bytes = 200 * 1024;
  workload.phantom = false;
  auto prepared = exec::PrepareWorkload(&machine, workload);
  ASSERT_TRUE(prepared.ok());

  query::CountSink count;
  query::TertiaryQuery query;
  query.r = &prepared->r;
  query.s = &prepared->s;
  query.pipeline = &count;
  join::JoinContext ctx = machine.context();
  auto stats = query::ExecuteQuery(query, ctx);
  ASSERT_TRUE(stats.ok()) << stats.status();
  // FK-uniform workload: every S tuple matches exactly once.
  EXPECT_EQ(count.count(), prepared->s.tuple_count);
  EXPECT_GT(stats->join.response_seconds, 0.0);
}

TEST(TraceIntegration, GanttRendersAfterARealJoin) {
  exec::MachineConfig config = exec::MachineConfig::PaperTestbed(60 * kMB, 4 * kMB);
  exec::Machine machine(config);
  for (const auto& resource : machine.sim().resources()) resource->EnableTrace();
  exec::WorkloadConfig workload;
  workload.r_bytes = 10 * kMB;
  workload.s_bytes = 40 * kMB;
  workload.phantom = true;
  auto prepared = exec::PrepareWorkload(&machine, workload);
  ASSERT_TRUE(prepared.ok());
  join::JoinSpec spec;
  spec.r = &prepared->r;
  spec.s = &prepared->s;
  join::JoinContext ctx = machine.context();
  ASSERT_TRUE(join::CreateJoinMethod(JoinMethodId::kCttGh)->Execute(spec, ctx).ok());
  std::string gantt = sim::RenderGantt(machine.sim());
  EXPECT_NE(gantt.find("tapeR"), std::string::npos);
  EXPECT_NE(gantt.find("tapeS"), std::string::npos);
  EXPECT_NE(gantt.find("disk0"), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);  // something was busy
}

TEST(ScaleIntegration, TenGigabyteJoinSimulatesQuickly) {
  // The flagship experiment (Join IV) must stay cheap to simulate — this is
  // what makes the benches usable. No wall-clock assertion (machines vary);
  // just end-to-end success at full scale with sane accounting.
  auto stats = exec::RunJoinExperiment(
      exec::MachineConfig::PaperTestbed(500 * kMB, 16 * kMB),
      exec::WorkloadConfig{2500 * kMB, 10000 * kMB, 0.25, 100, 42, true},
      JoinMethodId::kCttGh);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->response_seconds, 3600.0);  // hours of virtual time
  // Tape traffic: Step I scans R several times, Step II re-reads hashed R
  // per iteration plus S once.
  EXPECT_GT(stats->tape_blocks_read,
            BytesToBlocks(10000 * kMB, kDefaultBlockBytes) +
                5 * BytesToBlocks(2500 * kMB, kDefaultBlockBytes));
}

}  // namespace
}  // namespace tertio
