// Timing-behaviour tests at paper scale (phantom mode): the simulated
// response times must show the paper's qualitative results, and the
// analytical cost model must track the simulator.

#include <gtest/gtest.h>

#include <cmath>

#include "cost/cost_model.h"
#include "exec/experiment.h"
#include "exec/machine.h"
#include "join/reference_join.h"
#include "relation/generator.h"
#include "tape/tape_model.h"

namespace tertio::join {
namespace {

Result<JoinStats> RunPhantom(ByteCount s_bytes, ByteCount r_bytes, ByteCount disk_bytes,
                      ByteCount memory_bytes, JoinMethodId method,
                      double compressibility = 0.25) {
  exec::MachineConfig machine = exec::MachineConfig::PaperTestbed(disk_bytes, memory_bytes);
  exec::WorkloadConfig workload;
  workload.r_bytes = r_bytes;
  workload.s_bytes = s_bytes;
  workload.compressibility = compressibility;
  workload.phantom = true;
  return exec::RunJoinExperiment(machine, workload, method);
}

SimSeconds OptimumSeconds(ByteCount s_bytes, double compressibility = 0.25) {
  return tape::TapeDriveModel::DLT4000().TransferSeconds(s_bytes, compressibility);
}

TEST(Experiment1Test, Table3RelativeCostBand) {
  // Joins I-IV of Table 3; the paper's relative costs are 7.9/7.3/6.9/6.8.
  struct Row {
    std::uint64_t s_mb, r_mb, d_mb;
  } rows[] = {{1000, 500, 100}, {2500, 1250, 250}, {5000, 2500, 500}, {10000, 2500, 500}};
  for (const Row& row : rows) {
    auto stats = RunPhantom(row.s_mb * kMB, row.r_mb * kMB, row.d_mb * kMB, 16 * kMB,
                     JoinMethodId::kCttGh);
    ASSERT_TRUE(stats.ok()) << stats.status();
    tape::TapeDriveModel drive = tape::TapeDriveModel::DLT4000();
    SimSeconds bare = drive.TransferSeconds(row.s_mb * kMB, 0.25) +
                      drive.TransferSeconds(row.r_mb * kMB, 0.25);
    double rel_cost = stats->response_seconds / bare;
    EXPECT_GT(rel_cost, 5.0) << row.s_mb;
    EXPECT_LT(rel_cost, 9.0) << row.s_mb;
  }
}

TEST(Experiment1Test, StepOneScansRAsExpected) {
  // Join III: D = |R|/5 means 5 scans of R in Step I, and Step II reads the
  // hashed R once per iteration (10 iterations of 500 MB over 5,000 MB).
  auto stats = RunPhantom(5000 * kMB, 2500 * kMB, 500 * kMB, 16 * kMB, JoinMethodId::kCttGh);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->iterations, 10u);
  // Idealized ceil(|R|/D) = 5 Step-I scans; bucket granularity (whole
  // buckets per scan) can add one.
  EXPECT_GE(stats->r_scans, 15u);
  EXPECT_LE(stats->r_scans, 16u);
  // Step I streams R per scan and writes it once to tape.
  double read_r_once = OptimumSeconds(2500 * kMB).value();
  EXPECT_GT(stats->step1_seconds, 5.0 * read_r_once * 0.9);
  EXPECT_LT(stats->step1_seconds, 8.5 * read_r_once);
}

TEST(Experiment2Test, CdtGhExplodesAsDiskApproachesR) {
  // Figure 5: at D = 20 MB, CDT-GH buffers S in ~2 MB pieces -> ~500 scans
  // of R; CTT-GH keeps all 20 MB -> ~50 scans.
  auto cdt = RunPhantom(1000 * kMB, 18 * kMB, 20 * kMB, 1800 * kKB, JoinMethodId::kCdtGh);
  auto ctt = RunPhantom(1000 * kMB, 18 * kMB, 20 * kMB, 1800 * kKB, JoinMethodId::kCttGh);
  ASSERT_TRUE(cdt.ok()) << cdt.status();
  ASSERT_TRUE(ctt.ok()) << ctt.status();
  EXPECT_GT(cdt->r_scans, 350u);
  EXPECT_LT(cdt->r_scans, 650u);
  EXPECT_GT(ctt->r_scans, 40u);
  EXPECT_LT(ctt->r_scans, 70u);
  EXPECT_GT(cdt->response_seconds, 2.0 * ctt->response_seconds);
}

TEST(Experiment2Test, CdtGhWinsWhenDiskIsAmple) {
  auto cdt = RunPhantom(1000 * kMB, 18 * kMB, 54 * kMB, 1800 * kKB, JoinMethodId::kCdtGh);
  auto ctt = RunPhantom(1000 * kMB, 18 * kMB, 54 * kMB, 1800 * kKB, JoinMethodId::kCttGh);
  ASSERT_TRUE(cdt.ok() && ctt.ok());
  // "When ample disk space but little main memory is available, CDT-GH is
  // the preferred method" — at D = 3|R| they are close, CDT-GH no worse.
  EXPECT_LE(cdt->response_seconds, ctt->response_seconds * 1.05);
}

TEST(Experiment3Test, NbMethodsBlowUpAtSmallMemory) {
  ByteCount small_m = static_cast<ByteCount>(0.05 * 18 * static_cast<double>(kMB.value()));
  ByteCount large_m = 18 * kMB;
  for (JoinMethodId method : {JoinMethodId::kDtNb, JoinMethodId::kCdtNbMb}) {
    auto small = RunPhantom(1000 * kMB, 18 * kMB, 50 * kMB, small_m, method);
    auto large = RunPhantom(1000 * kMB, 18 * kMB, 50 * kMB, large_m, method);
    ASSERT_TRUE(small.ok() && large.ok()) << JoinMethodName(method);
    EXPECT_GT(small->response_seconds, 5.0 * large->response_seconds)
        << JoinMethodName(method);
  }
}

TEST(Experiment3Test, CdtNbMbApproachesOptimumAtFullMemory) {
  auto stats = RunPhantom(1000 * kMB, 18 * kMB, 50 * kMB, 18 * kMB, JoinMethodId::kCdtNbMb);
  ASSERT_TRUE(stats.ok());
  double optimum = OptimumSeconds(1000 * kMB).value();
  // Paper: "close to reaching the optimum join time".
  EXPECT_LT(stats->response_seconds, optimum * 1.10);
  EXPECT_GE(stats->response_seconds, optimum * 0.999);
}

TEST(Experiment3Test, CdtGhDominatesAtSmallMemory) {
  ByteCount m = static_cast<ByteCount>(0.15 * 18 * static_cast<double>(kMB.value()));
  auto cdt_gh = RunPhantom(1000 * kMB, 18 * kMB, 50 * kMB, m, JoinMethodId::kCdtGh);
  ASSERT_TRUE(cdt_gh.ok());
  for (JoinMethodId method : {JoinMethodId::kDtNb, JoinMethodId::kCdtNbMb,
                              JoinMethodId::kCdtNbDb, JoinMethodId::kDtGh}) {
    auto other = RunPhantom(1000 * kMB, 18 * kMB, 50 * kMB, m, method);
    ASSERT_TRUE(other.ok()) << JoinMethodName(method);
    EXPECT_LT(cdt_gh->response_seconds, other->response_seconds) << JoinMethodName(method);
  }
}

TEST(Experiment3Test, ConcurrentVariantsBeatSequentialOnes) {
  ByteCount m = static_cast<ByteCount>(0.3 * 18 * static_cast<double>(kMB.value()));
  auto dt_gh = RunPhantom(1000 * kMB, 18 * kMB, 50 * kMB, m, JoinMethodId::kDtGh);
  auto cdt_gh = RunPhantom(1000 * kMB, 18 * kMB, 50 * kMB, m, JoinMethodId::kCdtGh);
  ASSERT_TRUE(dt_gh.ok() && cdt_gh.ok());
  EXPECT_LT(cdt_gh->response_seconds, dt_gh->response_seconds);
  auto dt_nb = RunPhantom(1000 * kMB, 18 * kMB, 50 * kMB, m, JoinMethodId::kDtNb);
  auto mb = RunPhantom(1000 * kMB, 18 * kMB, 50 * kMB, m, JoinMethodId::kCdtNbMb);
  ASSERT_TRUE(dt_nb.ok() && mb.ok());
  // At 0.3|R|, CDT-NB/MB's halved chunks are already amortized; it wins.
  EXPECT_LT(mb->response_seconds, dt_nb->response_seconds * 1.10);
}

TEST(Experiment3Test, GraceTrafficConstantNbTrafficExplodes) {
  // Figure 7's contrast, on the simulator.
  ByteCount small_m = static_cast<ByteCount>(0.1 * 18 * static_cast<double>(kMB.value()));
  ByteCount large_m = static_cast<ByteCount>(0.8 * 18 * static_cast<double>(kMB.value()));
  auto gh_small = RunPhantom(1000 * kMB, 18 * kMB, 50 * kMB, small_m, JoinMethodId::kDtGh);
  auto gh_large = RunPhantom(1000 * kMB, 18 * kMB, 50 * kMB, large_m, JoinMethodId::kDtGh);
  ASSERT_TRUE(gh_small.ok() && gh_large.ok());
  double ratio = static_cast<double>(gh_small->disk_traffic_blocks().value()) /
                 static_cast<double>(gh_large->disk_traffic_blocks().value());
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.3);
  // GH traffic ~ 3,000 MB at these parameters (paper's "around 3,000 MB").
  double gh_mb = static_cast<double>(
                     BlocksToBytes(gh_large->disk_traffic_blocks(), kDefaultBlockBytes).value()) /
                 static_cast<double>(kMB.value());
  EXPECT_GT(gh_mb, 2000.0);
  EXPECT_LT(gh_mb, 4000.0);
  auto nb_small = RunPhantom(1000 * kMB, 18 * kMB, 50 * kMB, small_m, JoinMethodId::kDtNb);
  ASSERT_TRUE(nb_small.ok());
  EXPECT_GT(nb_small->disk_traffic_blocks(), 3 * gh_small->disk_traffic_blocks());
}

TEST(Experiment3Test, TapeSpeedLeavesConcurrentResponseNearlyUnchanged) {
  // Figures 9-11: concurrent methods are disk-bound; halving/doubling the
  // effective tape rate moves the optimum, not the response.
  ByteCount m = static_cast<ByteCount>(0.3 * 18 * static_cast<double>(kMB.value()));
  auto slow = RunPhantom(1000 * kMB, 18 * kMB, 50 * kMB, m, JoinMethodId::kCdtGh, 0.0);
  auto base = RunPhantom(1000 * kMB, 18 * kMB, 50 * kMB, m, JoinMethodId::kCdtGh, 0.25);
  auto fast = RunPhantom(1000 * kMB, 18 * kMB, 50 * kMB, m, JoinMethodId::kCdtGh, 0.5);
  ASSERT_TRUE(slow.ok() && base.ok() && fast.ok());
  EXPECT_NEAR((fast->response_seconds).value(), ((slow->response_seconds)).value(),
              slow->response_seconds.value() * 0.25);
  double overhead_slow = slow->response_seconds / OptimumSeconds(1000 * kMB, 0.0) - 1.0;
  double overhead_fast = fast->response_seconds / OptimumSeconds(1000 * kMB, 0.5) - 1.0;
  EXPECT_GT(overhead_fast, overhead_slow + 0.2);
}

TEST(CrossValidationTest, CostModelTracksSimulator) {
  // The analytical estimates (Figures 1-3) should track the simulator
  // within a band across methods and regimes — the validation the paper
  // performs in Sections 7-9.
  struct Case {
    std::uint64_t s_mb, r_mb, d_mb, m_kb;
  } cases[] = {
      {1000, 18, 50, 5400},    // Experiment 3 mid-memory
      {1000, 18, 36, 1800},    // Experiment 2 regime
      {2000, 200, 500, 20000}, // larger R
  };
  for (const Case& c : cases) {
    for (JoinMethodId method : kAllJoinMethods) {
      auto stats = RunPhantom(c.s_mb * kMB, c.r_mb * kMB, c.d_mb * kMB, c.m_kb * kKB, method);
      exec::Machine machine(exec::MachineConfig::PaperTestbed(c.d_mb * kMB, c.m_kb * kKB));
      exec::WorkloadConfig workload;
      workload.r_bytes = c.r_mb * kMB;
      workload.s_bytes = c.s_mb * kMB;
      auto params = exec::CostParamsFor(machine, workload);
      auto estimate = cost::Estimate(method, params);
      ASSERT_EQ(stats.ok(), estimate.ok()) << JoinMethodName(method) << " feasibility disagrees";
      if (!stats.ok()) continue;
      double ratio = stats->response_seconds / estimate->total_seconds;
      EXPECT_GT(ratio, 0.6) << JoinMethodName(method) << " s=" << c.s_mb << " d=" << c.d_mb;
      EXPECT_LT(ratio, 1.7) << JoinMethodName(method) << " s=" << c.s_mb << " d=" << c.d_mb;
    }
  }
}

TEST(PhantomStatsTest, OutputInvalidButTrafficTracked) {
  auto stats = RunPhantom(100 * kMB, 10 * kMB, 30 * kMB, 2 * kMB, JoinMethodId::kCttGh);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->output_valid);
  EXPECT_EQ(stats->output_tuples, 0u);
  EXPECT_GT(stats->tape_blocks_read, 0u);
  EXPECT_GT(stats->disk_blocks_written, 0u);
}

}  // namespace
}  // namespace tertio::join

namespace tertio::join {
namespace {

TEST(ReadReverseTest, BiDirectionalDriveAvoidsLocates) {
  // Paper footnote 2: a drive with READ REVERSE never repositions between
  // CTT-GH Step II iterations. Compare the same join on a DLT with and
  // without the capability.
  auto run_with = [&](bool bidi, tape::TapeDriveStats* drive_stats) {
    exec::MachineConfig config = exec::MachineConfig::PaperTestbed(100 * kMB, 8 * kMB);
    config.tape_model.supports_read_reverse = bidi;
    exec::Machine machine(config);
    exec::WorkloadConfig workload;
    workload.r_bytes = 200 * kMB;
    workload.s_bytes = 1000 * kMB;
    workload.phantom = true;
    auto prepared = exec::PrepareWorkload(&machine, workload);
    TERTIO_CHECK(prepared.ok(), "setup failed");
    JoinSpec spec;
    spec.r = &prepared->r;
    spec.s = &prepared->s;
    JoinContext ctx = machine.context();
    auto stats = CreateJoinMethod(JoinMethodId::kCttGh)->Execute(spec, ctx);
    TERTIO_CHECK(stats.ok(), stats.status().ToString());
    *drive_stats = machine.drive_r().stats();
    return stats->response_seconds;
  };
  tape::TapeDriveStats forward_stats, bidi_stats;
  SimSeconds forward = run_with(false, &forward_stats);
  SimSeconds bidi = run_with(true, &bidi_stats);
  EXPECT_LE(bidi, forward);
  EXPECT_LT(bidi_stats.reposition_count, forward_stats.reposition_count);
}

TEST(ReadReverseTest, CorrectResultsUnderReversePasses) {
  exec::MachineConfig config;
  config.block_bytes = 1024;
  config.memory_bytes = 20 * 1024;
  config.disk_space_bytes = 30 * 1024;  // D < |R|: several Step II passes
  config.stripe_unit = 4;
  config.tape_model = tape::TapeDriveModel::DLT4000();
  config.tape_model.supports_read_reverse = true;
  exec::Machine machine(config);
  rel::GeneratorConfig r_config;
  r_config.tuple_count = 400;  // 40 blocks
  auto r = rel::GenerateOnTape(r_config, &machine.tape_r());
  rel::GeneratorConfig s_config;
  s_config.tuple_count = 2000;
  s_config.keys = rel::KeySequence::kForeignKeyUniform;
  s_config.key_domain = 400;
  s_config.seed = 5;
  auto s = rel::GenerateOnTape(s_config, &machine.tape_s());
  ASSERT_TRUE(r.ok() && s.ok());
  machine.MountTapes();
  JoinSpec spec;
  spec.r = &r.value();
  spec.s = &s.value();
  JoinContext ctx = machine.context();
  auto stats = CreateJoinMethod(JoinMethodId::kCttGh)->Execute(spec, ctx);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_GE(stats->iterations, 2u);  // reverse passes actually happened
  auto reference = ReferenceJoin(r.value(), s.value(), 0, 0);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(stats->output_tuples, reference->tuples());
  EXPECT_EQ(stats->output_checksum, reference->checksum());
}

}  // namespace
}  // namespace tertio::join
