// Unit tests for tertio_util: Status/Result, units, math, RNG, formatting.

#include <gtest/gtest.h>

#include <set>

#include "util/math_util.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/units.h"

namespace tertio {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad block count");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad block count");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad block count");
}

TEST(StatusTest, OkCodeWithMessageNormalizes) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kResourceExhausted,
        StatusCode::kNotFound, StatusCode::kFailedPrecondition, StatusCode::kInternal,
        StatusCode::kUnimplemented}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  TERTIO_ASSIGN_OR_RETURN(int half, HalveEven(x));
  TERTIO_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(QuarterViaMacro(8).value(), 2);
  EXPECT_FALSE(QuarterViaMacro(6).ok());
  EXPECT_FALSE(QuarterViaMacro(5).ok());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status ChainViaMacro(int x) {
  TERTIO_RETURN_IF_ERROR(FailIfNegative(x));
  TERTIO_RETURN_IF_ERROR(FailIfNegative(x - 10));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(ChainViaMacro(15).ok());
  EXPECT_FALSE(ChainViaMacro(5).ok());
  EXPECT_FALSE(ChainViaMacro(-1).ok());
}

TEST(UnitsTest, BytesToBlocksRoundsUp) {
  EXPECT_EQ(BytesToBlocks(0, 4096), 0u);
  EXPECT_EQ(BytesToBlocks(1, 4096), 1u);
  EXPECT_EQ(BytesToBlocks(4096, 4096), 1u);
  EXPECT_EQ(BytesToBlocks(4097, 4096), 2u);
  EXPECT_EQ(BlocksToBytes(3, 4096), 12288u);
}

TEST(UnitsTest, DecimalAndBinaryPrefixes) {
  EXPECT_EQ(kMB, 1'000'000u);
  EXPECT_EQ(kMiB, 1'048'576u);
  EXPECT_EQ(kGB, 1'000'000'000u);
}

// Property: blocks -> bytes -> blocks is the identity for every block count
// and block size (including non-power-of-two sizes), because BlocksToBytes
// is exact and BytesToBlocks is exact ceiling division.
TEST(UnitsTest, ConversionRoundTripProperty) {
  Rng rng(0xD1CE5EED);
  const std::uint64_t sizes[] = {1, 7, 512, 1000, 4096, 4097, 8192, 12345, 1u << 20};
  for (int iter = 0; iter < 2000; ++iter) {
    ByteCount b = sizes[rng.NextBelow(sizeof(sizes) / sizeof(sizes[0]))];
    BlockCount n = rng.NextBelow((std::uint64_t{1} << 40) / b.value());
    EXPECT_EQ(BytesToBlocks(BlocksToBytes(n, b), b), n)
        << n.value() << " blocks of " << b.value();
  }
}

// Ceiling division is exact at the boundaries: k*b bytes is exactly k
// blocks, one byte less drops to k, one byte more needs k+1.
TEST(UnitsTest, CeilingDivisionExactAtBoundaries) {
  Rng rng(0xB10C5);
  const std::uint64_t sizes[] = {1, 7, 512, 1000, 4096, 4097, 8192, 12345};
  for (int iter = 0; iter < 2000; ++iter) {
    ByteCount b = sizes[rng.NextBelow(sizeof(sizes) / sizeof(sizes[0]))];
    std::uint64_t k = 1 + rng.NextBelow((std::uint64_t{1} << 40) / b.value());
    ByteCount exact = BlocksToBytes(k, b);
    EXPECT_EQ(BytesToBlocks(exact, b), k);
    EXPECT_EQ(BytesToBlocks(exact - ByteCount{1}, b), b.value() == 1 ? k - 1 : k);
    EXPECT_EQ(BytesToBlocks(exact + ByteCount{1}, b), k + 1);
  }
}

// BytesToBlocks must not wrap near the top of the byte range — the textbook
// (a + b - 1) / b would.
TEST(UnitsTest, BytesToBlocksWrapProofNearMax) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  EXPECT_EQ(BytesToBlocks(ByteCount{kMax}, 4096), kMax / 4096 + 1);
  EXPECT_EQ(BytesToBlocks(ByteCount{kMax - 1}, ByteCount{kMax}), 1u);
  EXPECT_EQ(BytesToBlocks(ByteCount{kMax}, ByteCount{kMax}), 1u);
}

// Checked conversions: Status at the exact wrap boundary, value agreement
// with the unchecked path everywhere in range.
TEST(UnitsTest, CheckedBlocksToBytesWrapBoundary) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  const ByteCount b = 4096;
  const BlockCount largest_fitting = kMax / 4096;  // product <= kMax
  auto ok = CheckedBlocksToBytes(largest_fitting, b);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, BlocksToBytes(largest_fitting, b));
  auto wrapped = CheckedBlocksToBytes(largest_fitting + BlockCount{1}, b);
  EXPECT_FALSE(wrapped.ok());
  EXPECT_EQ(wrapped.status().code(), StatusCode::kInvalidArgument);
}

TEST(UnitsTest, CheckedBytesToBlocksRejectsZeroBlockSize) {
  auto zero = CheckedBytesToBlocks(4096, 0);
  EXPECT_FALSE(zero.ok());
  auto fine = CheckedBytesToBlocks(4097, 4096);
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ(*fine, 2u);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv<uint64_t>(10, 3), 4u);
  EXPECT_EQ(CeilDiv<uint64_t>(9, 3), 3u);
  EXPECT_EQ(CeilDiv<uint64_t>(1, 100), 1u);
}

TEST(MathTest, CeilSqrt) {
  EXPECT_EQ(CeilSqrt(0), 0u);
  EXPECT_EQ(CeilSqrt(1), 1u);
  EXPECT_EQ(CeilSqrt(2), 2u);
  EXPECT_EQ(CeilSqrt(4), 2u);
  EXPECT_EQ(CeilSqrt(5), 3u);
  EXPECT_EQ(CeilSqrt(1'000'000), 1000u);
  EXPECT_EQ(CeilSqrt(1'000'001), 1001u);
}

TEST(MathTest, ApproxEqual) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0));
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  EXPECT_TRUE(ApproxEqual(0.0, 0.0));
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit over 1000 draws
}

TEST(SplitMixTest, IsWellMixed) {
  // Consecutive inputs produce values differing in many bits.
  std::set<uint64_t> values;
  for (uint64_t i = 0; i < 1000; ++i) values.insert(SplitMix64(i));
  EXPECT_EQ(values.size(), 1000u);
}

TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(512), "512 bytes");
  EXPECT_EQ(FormatBytes(1500), "1.5 KB");
  EXPECT_EQ(FormatBytes(2'500'000), "2.5 MB");
  EXPECT_EQ(FormatBytes(10'000'000'000ull), "10.00 GB");
}

TEST(FormatTest, Duration) {
  EXPECT_EQ(FormatDuration(0.5), "500 ms");
  EXPECT_EQ(FormatDuration(45.25), "45.2 s");
  EXPECT_EQ(FormatDuration(125), "2m 05s");
  EXPECT_EQ(FormatDuration(7325), "2h 02m 05s");
}

TEST(FormatTest, Fixed) {
  EXPECT_EQ(FormatFixed(6.94, 1), "6.9");
  EXPECT_EQ(FormatFixed(6.96, 1), "7.0");
}

TEST(FormatTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

}  // namespace
}  // namespace tertio
