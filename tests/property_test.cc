// Property-style sweeps (parameterized gtest): conservation and resource
// invariants that must hold for every method across a grid of geometries,
// verified on real data against the reference join.

#include <gtest/gtest.h>

#include <cmath>

#include "exec/machine.h"
#include "join/join_method.h"
#include "join/reference_join.h"
#include "relation/generator.h"

namespace tertio::join {
namespace {

constexpr ByteCount kBlock = 1024;

struct Geometry {
  uint64_t r_tuples;
  uint64_t s_tuples;
  BlockCount memory_blocks;
  BlockCount disk_blocks;
};

// Three regimes: comfortable, memory-tight, disk-tight (tape-tape only for
// the disk-tight one — disk-tape methods are expected to refuse it).
const Geometry kGeometries[] = {
    {300, 1500, 24, 96},   // comfortable
    {600, 1800, 14, 128},  // memory-tight
    {600, 1800, 20, 40},   // disk-tight: D < |R| = 60 blocks
};

using Param = std::tuple<JoinMethodId, int>;

class PropertyTest : public ::testing::TestWithParam<Param> {
 public:
  static std::string Name(const ::testing::TestParamInfo<Param>& info) {
    std::string name(JoinMethodName(std::get<0>(info.param)));
    for (char& c : name) {
      if (c == '-' || c == '/') c = '_';
    }
    return name + "_geo" + std::to_string(std::get<1>(info.param));
  }
};

TEST_P(PropertyTest, InvariantsAndCorrectness) {
  auto [method_id, geo_index] = GetParam();
  const Geometry& geo = kGeometries[geo_index];

  exec::MachineConfig config;
  config.block_bytes = kBlock;
  config.memory_bytes = geo.memory_blocks * kBlock;
  config.disk_space_bytes = geo.disk_blocks * kBlock;
  config.stripe_unit = 4;
  exec::Machine machine(config);

  rel::GeneratorConfig r_config;
  r_config.name = "R";
  r_config.tuple_count = geo.r_tuples;
  r_config.keys = rel::KeySequence::kSequentialUnique;
  r_config.seed = 101 + geo_index;
  auto r = rel::GenerateOnTape(r_config, &machine.tape_r());
  rel::GeneratorConfig s_config;
  s_config.name = "S";
  s_config.tuple_count = geo.s_tuples;
  s_config.keys = rel::KeySequence::kForeignKeyUniform;
  s_config.key_domain = geo.r_tuples;
  s_config.seed = 202 + geo_index;
  auto s = rel::GenerateOnTape(s_config, &machine.tape_s());
  ASSERT_TRUE(r.ok() && s.ok());
  machine.MountTapes();

  JoinSpec spec;
  spec.r = &r.value();
  spec.s = &s.value();
  auto executor = CreateJoinMethod(method_id);
  JoinContext ctx = machine.context();

  auto requirements = executor->Requirements(spec, ctx);
  auto stats = executor->Execute(spec, ctx);
  if (!stats.ok()) {
    // A method may refuse a geometry, but then it must be a resource error
    // and (when requirements are computable) the requirements must exceed
    // the machine.
    EXPECT_EQ(stats.status().code(), StatusCode::kResourceExhausted) << stats.status();
    if (requirements.ok()) {
      EXPECT_TRUE(requirements->memory_blocks > machine.memory_blocks() ||
                  requirements->disk_blocks > machine.disk_blocks())
          << "refused although requirements fit: " << stats.status();
    }
    return;
  }

  // --- Correctness: identical pair set to the reference join.
  auto reference = ReferenceJoin(*spec.r, *spec.s, 0, 0);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(stats->output_tuples, reference->tuples());
  EXPECT_EQ(stats->output_checksum, reference->checksum());

  // --- Conservation: both relations are read in full from tape at least
  // once; R is read exactly r_scans times from *some* medium.
  EXPECT_GE(stats->tape_blocks_read, spec.r->blocks + spec.s->blocks);

  // --- Resource ceilings: never exceed the configured M and D.
  EXPECT_LE(stats->peak_memory_blocks, machine.memory_blocks());
  EXPECT_LE(stats->peak_disk_blocks, machine.disk_blocks());

  // --- Timing: steps sum to the response; all durations non-negative.
  EXPECT_GE(stats->step1_seconds, 0.0);
  EXPECT_GE(stats->step2_seconds, 0.0);
  EXPECT_NEAR((stats->step1_seconds + stats->step2_seconds).value(), ((stats->response_seconds)).value(),
              stats->response_seconds.value() * 0.05 + 1e-9);

  // --- Device accounting: traffic implies busy time; response is at least
  // the busiest device's busy time and at most the sum of all busy times
  // plus idle gaps (sanity bound: sum of device busy).
  double busiest = 0.0;
  double total_busy = 0.0;
  for (const auto& resource : machine.sim().resources()) {
    busiest = std::max(busiest, resource->stats().busy_seconds.value());
    total_busy += resource->stats().busy_seconds.value();
  }
  EXPECT_GE(stats->response_seconds, busiest * 0.999);
  EXPECT_LE(stats->response_seconds, total_busy * 1.001 + 1.0);

  // --- Cleanup: scratch space restored.
  EXPECT_EQ(machine.memory().reserved_blocks(), 0u);
  EXPECT_EQ(machine.disks().allocator().used_blocks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByGeometry, PropertyTest,
    ::testing::Combine(::testing::ValuesIn(kAllJoinMethods), ::testing::Values(0, 1, 2)),
    PropertyTest::Name);

/// Checksum is permutation-independent: two methods joining the same inputs
/// through entirely different physical plans agree bit-for-bit.
TEST(ChecksumPropertyTest, AllFeasibleMethodsAgreePairwise) {
  exec::MachineConfig config;
  config.block_bytes = kBlock;
  config.memory_bytes = 24 * kBlock;
  config.disk_space_bytes = 96 * kBlock;
  config.stripe_unit = 4;

  std::uint64_t checksum = 0;
  std::uint64_t tuples = 0;
  bool first = true;
  for (JoinMethodId method_id : kAllJoinMethods) {
    exec::Machine machine(config);
    rel::GeneratorConfig r_config;
    r_config.tuple_count = 400;
    r_config.keys = rel::KeySequence::kUniformRandom;
    r_config.key_domain = 90;
    r_config.seed = 7;
    auto r = rel::GenerateOnTape(r_config, &machine.tape_r());
    rel::GeneratorConfig s_config;
    s_config.tuple_count = 1300;
    s_config.keys = rel::KeySequence::kUniformRandom;
    s_config.key_domain = 90;
    s_config.seed = 8;
    auto s = rel::GenerateOnTape(s_config, &machine.tape_s());
    ASSERT_TRUE(r.ok() && s.ok());
    machine.MountTapes();
    JoinSpec spec;
    spec.r = &r.value();
    spec.s = &s.value();
    JoinContext ctx = machine.context();
    auto stats = CreateJoinMethod(method_id)->Execute(spec, ctx);
    ASSERT_TRUE(stats.ok()) << JoinMethodName(method_id) << ": " << stats.status();
    if (first) {
      checksum = stats->output_checksum;
      tuples = stats->output_tuples;
      first = false;
    } else {
      EXPECT_EQ(stats->output_checksum, checksum) << JoinMethodName(method_id);
      EXPECT_EQ(stats->output_tuples, tuples) << JoinMethodName(method_id);
    }
  }
}

}  // namespace
}  // namespace tertio::join
