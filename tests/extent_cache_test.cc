// Unit tests for the cross-query HSM extent cache (disk/extent_cache.h):
// hit/miss/fill/evict accounting, cost-aware (benefit-scored) eviction
// order, read-through disk costing, and the SimSan fill/evict ledger.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "disk/disk_model.h"
#include "disk/extent_cache.h"
#include "disk/striped_group.h"
#include "sim/auditor.h"
#include "sim/simulation.h"

namespace tertio::disk {
namespace {

constexpr ByteCount kBlock = 1000;

// Opaque volume tokens — the cache never dereferences them, so any stable
// address will do.
int g_volume_a = 0;
int g_volume_b = 0;

class ExtentCacheTest : public ::testing::Test {
 protected:
  // A 2-spindle site disk with a `cache_capacity`-block cache carve, the
  // same shape Site gives its cache (owning group + session-style view).
  void Init(BlockCount total_blocks, BlockCount cache_capacity) {
    DiskGroupConfig config =
        DiskGroupConfig::Uniform(2, DiskModel::Ideal(1e6), total_blocks, kBlock,
                                 /*stripe_unit=*/4);
    group_ = std::make_unique<StripedDiskGroup>(config, &sim_);
    auto carve = group_->allocator().Allocate(cache_capacity, 0.0, "extent-cache");
    ASSERT_TRUE(carve.ok()) << carve.status();
    carve_ = std::move(*carve);
    std::vector<DiskVolume*> spindles;
    for (int i = 0; i < group_->disk_count(); ++i) spindles.push_back(group_->disk(i));
    cache_ = std::make_unique<ExtentCache>(
        "extent-cache", std::make_unique<StripedDiskGroup>(std::move(spindles), carve_,
                                                           /*stripe_unit=*/4, kBlock));
    if (sim_.auditor() != nullptr) cache_->BindAuditor(sim_.auditor());
  }

  sim::Simulation sim_;
  std::unique_ptr<StripedDiskGroup> group_;
  ExtentList carve_;
  std::unique_ptr<ExtentCache> cache_;
};

TEST_F(ExtentCacheTest, HitMissFillEvictAccounting) {
  Init(/*total_blocks=*/400, /*cache_capacity=*/100);
  EXPECT_EQ(cache_->capacity_blocks(), 100u);
  EXPECT_FALSE(cache_->Lookup(&g_volume_a, 0, 60, 0.0));

  auto filled = cache_->Admit(&g_volume_a, 0, 60, /*tape_rate_bps=*/1.5e5, 0.0);
  ASSERT_TRUE(filled.ok()) << filled.status();
  EXPECT_TRUE(*filled);
  EXPECT_EQ(cache_->resident_blocks(), 60u);
  EXPECT_EQ(cache_->stats().fills, 1u);
  EXPECT_EQ(cache_->stats().blocks_filled, 60u);

  EXPECT_TRUE(cache_->Lookup(&g_volume_a, 0, 60, 1.0));
  // Same token, different extent bounds: whole-extent identity, so a miss.
  EXPECT_FALSE(cache_->Lookup(&g_volume_a, 0, 30, 1.0));
  EXPECT_FALSE(cache_->Lookup(&g_volume_b, 0, 60, 1.0));

  // A second 60-block extent cannot coexist with the first in 100 blocks:
  // the fill must evict the resident entry.
  auto second = cache_->Admit(&g_volume_b, 0, 60, /*tape_rate_bps=*/1.5e5, 2.0);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(*second);
  EXPECT_EQ(cache_->stats().evictions, 1u);
  EXPECT_EQ(cache_->stats().blocks_evicted, 60u);
  EXPECT_EQ(cache_->resident_blocks(), 60u);
  EXPECT_FALSE(cache_->Contains(&g_volume_a, 0, 60));
  EXPECT_TRUE(cache_->Contains(&g_volume_b, 0, 60));

  EXPECT_EQ(cache_->stats().lookups, 4u);
  EXPECT_EQ(cache_->stats().hits, 1u);
  EXPECT_EQ(cache_->stats().misses, 3u);
}

TEST_F(ExtentCacheTest, EvictionPrefersTheLowestRefetchBenefit) {
  Init(/*total_blocks=*/400, /*cache_capacity=*/100);
  // Same admission time, different effective tape rates: the entry that is
  // cheap to refetch (tape nearly as fast as disk) scores lowest and goes
  // first, even though both are equally recent.
  ASSERT_TRUE(cache_->Admit(&g_volume_a, 0, 40, /*tape_rate_bps=*/1.0e5, 0.0).ok());
  ASSERT_TRUE(cache_->Admit(&g_volume_b, 0, 40, /*tape_rate_bps=*/1.9e6, 0.0).ok());
  auto third = cache_->Admit(&g_volume_a, 1000, 40, /*tape_rate_bps=*/1.0e5, 0.0);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_TRUE(*third);
  EXPECT_TRUE(cache_->Contains(&g_volume_a, 0, 40));
  EXPECT_FALSE(cache_->Contains(&g_volume_b, 0, 40));
  EXPECT_TRUE(cache_->Contains(&g_volume_a, 1000, 40));
}

TEST_F(ExtentCacheTest, RecentUseOutweighsBenefit) {
  Init(/*total_blocks=*/400, /*cache_capacity=*/100);
  // The cheap-to-refetch entry is touched much later; GreedyDual ages the
  // expensive one out instead.
  ASSERT_TRUE(cache_->Admit(&g_volume_a, 0, 40, /*tape_rate_bps=*/1.0e5, 0.0).ok());
  ASSERT_TRUE(cache_->Admit(&g_volume_b, 0, 40, /*tape_rate_bps=*/1.9e6, 0.0).ok());
  EXPECT_TRUE(cache_->Lookup(&g_volume_b, 0, 40, 1e6));
  auto third = cache_->Admit(&g_volume_a, 1000, 40, /*tape_rate_bps=*/1.0e5, 1e6);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_FALSE(cache_->Contains(&g_volume_a, 0, 40));
  EXPECT_TRUE(cache_->Contains(&g_volume_b, 0, 40));
}

TEST_F(ExtentCacheTest, RejectsOversizedAndDuplicateAdmissions) {
  Init(/*total_blocks=*/400, /*cache_capacity=*/100);
  auto too_big = cache_->Admit(&g_volume_a, 0, 101, 1.5e5, 0.0);
  ASSERT_TRUE(too_big.ok()) << too_big.status();
  EXPECT_FALSE(*too_big);
  EXPECT_EQ(cache_->stats().fills, 0u);

  ASSERT_TRUE(cache_->Admit(&g_volume_a, 0, 50, 1.5e5, 0.0).ok());
  auto again = cache_->Admit(&g_volume_a, 0, 50, 1.5e5, 1.0);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_FALSE(*again);
  EXPECT_EQ(cache_->stats().fills, 1u);
  EXPECT_EQ(cache_->resident_blocks(), 50u);
}

TEST_F(ExtentCacheTest, ReadThroughChargesDiskTimeAndCounts) {
  Init(/*total_blocks=*/400, /*cache_capacity=*/100);
  ASSERT_TRUE(cache_->Admit(&g_volume_a, 100, 80, 1.5e5, 0.0).ok());
  SimSeconds fill_end = sim_.Horizon();
  EXPECT_GT(fill_end, 0.0);  // the phantom fill write occupied the disks

  auto whole = cache_->ReadThrough(&g_volume_a, 100, 80, 100, 80, fill_end);
  ASSERT_TRUE(whole.ok()) << whole.status();
  EXPECT_GT(whole->end, fill_end);
  EXPECT_EQ(cache_->stats().blocks_served, 80u);

  // A strict sub-range of the entry is served from its slice.
  auto part = cache_->ReadThrough(&g_volume_a, 100, 80, 120, 20, whole->end);
  ASSERT_TRUE(part.ok()) << part.status();
  EXPECT_LT(part->duration(), whole->duration());
  EXPECT_EQ(cache_->stats().blocks_served, 100u);

  // Non-resident entries and out-of-entry ranges degrade to errors, not
  // reads of someone else's blocks.
  EXPECT_FALSE(cache_->ReadThrough(&g_volume_b, 100, 80, 100, 80, 0.0).ok());
  EXPECT_FALSE(cache_->ReadThrough(&g_volume_a, 100, 80, 90, 20, 0.0).ok());
  EXPECT_FALSE(cache_->ReadThrough(&g_volume_a, 100, 80, 170, 20, 0.0).ok());
}

TEST_F(ExtentCacheTest, FillAndEvictStaySimSanClean) {
  Init(/*total_blocks=*/400, /*cache_capacity=*/100);
  sim::Auditor* auditor = sim_.EnableAudit();
  cache_->BindAuditor(auditor);
  ASSERT_TRUE(cache_->Admit(&g_volume_a, 0, 60, 1.5e5, 0.0).ok());
  ASSERT_TRUE(cache_->Admit(&g_volume_b, 0, 60, 1.5e5, 1.0).ok());  // evicts A
  ASSERT_TRUE(cache_->Admit(&g_volume_a, 0, 30, 1.5e5, 2.0).ok());
  EXPECT_EQ(cache_->resident_blocks(), 90u);
  EXPECT_GT(auditor->checks_performed(), 0u);
  EXPECT_TRUE(auditor->clean()) << auditor->TraceString();
}

// Negative seeding: the auditor's independent ledger must catch a cache
// that overfills its carve, lies about its occupancy, or over-evicts.
TEST(ExtentCacheAuditTest, LedgerFlagsOvercommitAndMismatch) {
  {
    sim::Auditor auditor;
    auditor.OnCacheFill("c", 10, /*resident_after=*/10, /*capacity=*/5);
    EXPECT_FALSE(auditor.clean());
    EXPECT_EQ(auditor.violations()[0].kind, sim::AuditKind::kScratchOvercommit);
  }
  {
    sim::Auditor auditor;
    auditor.OnCacheFill("c", 10, /*resident_after=*/12, /*capacity=*/100);
    EXPECT_FALSE(auditor.clean());
    EXPECT_EQ(auditor.violations()[0].kind, sim::AuditKind::kByteConservation);
  }
  {
    sim::Auditor auditor;
    auditor.OnCacheFill("c", 10, 10, 100);
    auditor.OnCacheEvict("c", 20, 0);
    EXPECT_FALSE(auditor.clean());
    EXPECT_EQ(auditor.violations()[0].kind, sim::AuditKind::kAccounting);
  }
  {
    sim::Auditor auditor;
    auditor.OnCacheFill("c", 10, 10, 100);
    auditor.OnCacheEvict("c", 10, 0);
    EXPECT_TRUE(auditor.clean()) << auditor.TraceString();
    EXPECT_GT(auditor.checks_performed(), 0u);
  }
}

}  // namespace
}  // namespace tertio::disk
