// Forced-scalar vs SIMD FlatJoinTable equivalence (join/simd.h dispatch).
//
// The batched kernels (Bloom-prefiltered two-stage pipeline + group-of-four
// digest compares) must emit exactly the pair set of the original scalar
// loops on every workload shape: uniform, foreign-key, Zipf-skewed, and
// selective (miss-heavy) key distributions, wide records, seeded digest
// collisions, and the record-capturing pipeline mode. Build and probe modes
// are also crossed (scalar build + SIMD probe and vice versa): the Bloom
// filter is table state maintained by every insert path, so a mode switch
// between build and probe must not lose matches.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "join/flat_table.h"
#include "join/join_output.h"
#include "join/simd.h"
#include "relation/block.h"
#include "relation/generator.h"
#include "relation/tuple.h"
#include "tape/tape_volume.h"
#include "util/units.h"

namespace tertio::join {
namespace {

constexpr ByteCount kBlock = 8 * kKiB;

struct GeneratedBlocks {
  rel::Relation relation;
  std::vector<BlockPayload> blocks;
};

GeneratedBlocks GenerateBlocks(const rel::GeneratorConfig& config) {
  GeneratedBlocks g;
  tape::TapeVolume tape(config.name, kBlock);
  g.relation = rel::GenerateOnTape(config, &tape).value();
  for (BlockIndex i = 0; i < tape.size_blocks(); ++i) {
    g.blocks.push_back(tape.ReadBlock(i).value());
  }
  return g;
}

struct ProbeResult {
  std::uint64_t tuples = 0;
  std::uint64_t checksum = 0;
  std::uint64_t table_size = 0;
};

/// Builds under `build_level`, probes under `probe_level`, returns the
/// output aggregates. The levels are restored before returning.
ProbeResult RunAtLevels(simd::Level build_level, simd::Level probe_level,
                        const GeneratedBlocks& r, const GeneratedBlocks& s,
                        KeyHashFn key_hash = nullptr) {
  FlatJoinTable table(&r.relation.schema, 0, /*build_is_r=*/true,
                      /*capture_records=*/false, key_hash);
  simd::SetLevelForTest(build_level);
  TERTIO_CHECK(table.AddBlocks(r.blocks).ok(), "build failed");
  simd::SetLevelForTest(probe_level);
  JoinOutput out;
  TERTIO_CHECK(table.Probe(s.blocks, &s.relation.schema, 0, &out).ok(), "probe failed");
  simd::ResetLevelForTest();
  return {out.tuples(), out.checksum(), table.size()};
}

/// Workload grid shared by the equivalence tests: every key-sequence shape
/// the generator offers, including a selective case whose probe keys mostly
/// miss (the regime the Bloom prefilter accelerates).
struct WorkloadCase {
  const char* name;
  rel::KeySequence r_keys;
  rel::KeySequence s_keys;
  std::uint64_t r_domain;
  std::uint64_t s_domain;
  ByteCount record_bytes;
};

const WorkloadCase kWorkloads[] = {
    {"foreign-key", rel::KeySequence::kSequentialUnique, rel::KeySequence::kForeignKeyUniform,
     400, 400, 24},
    {"many-to-many", rel::KeySequence::kUniformRandom, rel::KeySequence::kUniformRandom, 120,
     120, 24},
    {"zipf-skew", rel::KeySequence::kSequentialUnique, rel::KeySequence::kZipf, 400, 400, 24},
    {"selective", rel::KeySequence::kUniformRandom, rel::KeySequence::kUniformRandom, 300,
     30000, 24},
    {"wide-records", rel::KeySequence::kUniformRandom, rel::KeySequence::kUniformRandom, 200,
     200, 256},
};

std::pair<GeneratedBlocks, GeneratedBlocks> Generate(const WorkloadCase& c) {
  rel::GeneratorConfig r_config;
  r_config.name = "R";
  r_config.tuple_count = 400;
  r_config.record_bytes = c.record_bytes;
  r_config.keys = c.r_keys;
  r_config.key_domain = c.r_domain;
  r_config.seed = 101;
  rel::GeneratorConfig s_config;
  s_config.name = "S";
  s_config.tuple_count = 1500;
  s_config.record_bytes = c.record_bytes;
  s_config.keys = c.s_keys;
  s_config.key_domain = c.s_domain;
  s_config.seed = 202;
  return {GenerateBlocks(r_config), GenerateBlocks(s_config)};
}

/// Every (build level, probe level) combination must produce the scalar
/// reference's pair set — same match count, same order-independent checksum
/// — on every workload shape.
TEST(FlatTableSimdTest, AllLevelCombinationsMatchScalarOnGeneratedWorkloads) {
  const simd::Level best = simd::BestSupportedLevel();
  for (const WorkloadCase& c : kWorkloads) {
    SCOPED_TRACE(c.name);
    auto [r, s] = Generate(c);
    const ProbeResult reference =
        RunAtLevels(simd::Level::kScalar, simd::Level::kScalar, r, s);
    EXPECT_GT(reference.table_size, 0u);
    const std::pair<simd::Level, simd::Level> combos[] = {
        {best, best}, {simd::Level::kScalar, best}, {best, simd::Level::kScalar}};
    for (const auto& [build_level, probe_level] : combos) {
      SCOPED_TRACE(std::string(simd::LevelName(build_level)) + " build / " +
                   simd::LevelName(probe_level) + " probe");
      const ProbeResult got = RunAtLevels(build_level, probe_level, r, s);
      EXPECT_EQ(got.table_size, reference.table_size);
      EXPECT_EQ(got.tuples, reference.tuples);
      EXPECT_EQ(got.checksum, reference.checksum);
    }
  }
}

/// A degenerate injected hash maps every key to one of two digests, so the
/// batched walk sees digest matches whose keys differ in nearly every group
/// — the key-compare rejection path — and chains that are one long collision
/// cluster. Both kernels must agree with each other and reject every
/// unequal-key digest collision.
std::uint64_t TwoValuedKeyHash(std::int64_t key) {
  return (key & 1) != 0 ? 42u : 7777u;
}

TEST(FlatTableSimdTest, SeededDigestCollisionsAgreeWithScalar) {
  const simd::Level best = simd::BestSupportedLevel();
  const WorkloadCase& c = kWorkloads[1];  // many-to-many: duplicates on both sides
  auto [r, s] = Generate(c);
  const ProbeResult reference =
      RunAtLevels(simd::Level::kScalar, simd::Level::kScalar, r, s, &TwoValuedKeyHash);
  const ProbeResult simd_result = RunAtLevels(best, best, r, s, &TwoValuedKeyHash);
  EXPECT_EQ(simd_result.table_size, reference.table_size);
  EXPECT_EQ(simd_result.tuples, reference.tuples);
  EXPECT_EQ(simd_result.checksum, reference.checksum);
  // The injected hash changes placement, never the pair set: the production
  // hash must report the identical aggregates.
  const ProbeResult production = RunAtLevels(best, best, r, s);
  EXPECT_EQ(production.tuples, reference.tuples);
  EXPECT_EQ(production.checksum, reference.checksum);
}

/// Pipeline (record-capturing) mode: both kernels must hand the sink the
/// same joined-row multiset. Order is explicitly method-dependent, so the
/// comparison sorts the serialized rows.
TEST(FlatTableSimdTest, PipelineModeDeliversTheSameRowMultiset) {
  const WorkloadCase& c = kWorkloads[0];
  auto [r, s] = Generate(c);
  auto collect = [&](simd::Level level) {
    simd::SetLevelForTest(level);
    FlatJoinTable table(&r.relation.schema, 0, /*build_is_r=*/true, /*capture_records=*/true);
    TERTIO_CHECK(table.AddBlocks(r.blocks).ok(), "build failed");
    std::vector<std::string> rows;
    JoinOutput out;
    out.set_sink([&rows](const rel::Tuple& rt, const rel::Tuple& st) {
      std::string row(rt.bytes().begin(), rt.bytes().end());
      row.append(st.bytes().begin(), st.bytes().end());
      rows.push_back(std::move(row));
      return Status::OK();
    });
    TERTIO_CHECK(table.Probe(s.blocks, &s.relation.schema, 0, &out).ok(), "probe failed");
    simd::ResetLevelForTest();
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  const std::vector<std::string> scalar_rows = collect(simd::Level::kScalar);
  const std::vector<std::string> simd_rows = collect(simd::BestSupportedLevel());
  EXPECT_FALSE(scalar_rows.empty());
  EXPECT_EQ(scalar_rows, simd_rows);
}

/// Clear() must reset the Bloom prefilter along with the slots: a cleared
/// and rebuilt table probed under SIMD must find the new entries (no false
/// negatives) and the aggregates must match a fresh scalar run.
TEST(FlatTableSimdTest, ClearResetsThePrefilter) {
  const WorkloadCase& c = kWorkloads[3];  // selective: the filter actually rejects
  auto [r, s] = Generate(c);
  simd::SetLevelForTest(simd::BestSupportedLevel());
  FlatJoinTable table(&r.relation.schema, 0, /*build_is_r=*/true);
  ASSERT_TRUE(table.AddBlocks(r.blocks).ok());
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  ASSERT_TRUE(table.AddBlocks(r.blocks).ok());
  JoinOutput out;
  ASSERT_TRUE(table.Probe(s.blocks, &s.relation.schema, 0, &out).ok());
  simd::ResetLevelForTest();
  const ProbeResult reference =
      RunAtLevels(simd::Level::kScalar, simd::Level::kScalar, r, s);
  EXPECT_EQ(out.tuples(), reference.tuples);
  EXPECT_EQ(out.checksum(), reference.checksum);
}

/// Dispatch plumbing: the test hooks clamp to the best supported level, and
/// the scalar fallback is always selectable.
TEST(FlatTableSimdTest, LevelDispatchIsClampedAndResettable) {
  const simd::Level best = simd::BestSupportedLevel();
  simd::SetLevelForTest(simd::Level::kScalar);
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  simd::SetLevelForTest(best);
  EXPECT_EQ(simd::ActiveLevel(), best);
#if defined(TERTIO_SIMD_SSE2) || defined(TERTIO_SIMD_NEON)
  EXPECT_NE(best, simd::Level::kScalar);
#else
  EXPECT_EQ(best, simd::Level::kScalar);
#endif
  simd::ResetLevelForTest();
}

}  // namespace
}  // namespace tertio::join
