// Unit tests for tertio_sim: resource timelines, task graphs, simulation.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/closed_form.h"
#include "sim/interval.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "sim/task_graph.h"
#include "util/rng.h"

namespace tertio::sim {
namespace {

TEST(IntervalTest, DurationAndHull) {
  Interval a{1.0, 3.0};
  Interval b{2.0, 5.0};
  EXPECT_DOUBLE_EQ((a.duration()).value(), 2.0);
  Interval h = Interval::Hull(a, b);
  EXPECT_DOUBLE_EQ(h.start.value(), 1.0);
  EXPECT_DOUBLE_EQ(h.end.value(), 5.0);
  EXPECT_DOUBLE_EQ((Interval::At(4.0).duration()).value(), 0.0);
}

TEST(ResourceTest, FifoSerialization) {
  Resource r("dev");
  Interval a = r.Schedule(0.0, 10.0);
  Interval b = r.Schedule(0.0, 5.0);
  EXPECT_DOUBLE_EQ(a.start.value(), 0.0);
  EXPECT_DOUBLE_EQ(a.end.value(), 10.0);
  EXPECT_DOUBLE_EQ(b.start.value(), 10.0);  // queued behind a
  EXPECT_DOUBLE_EQ(b.end.value(), 15.0);
  EXPECT_DOUBLE_EQ((r.available_at()).value(), 15.0);
}

TEST(ResourceTest, ReadyTimeDelaysStart) {
  Resource r("dev");
  Interval a = r.Schedule(100.0, 5.0);
  EXPECT_DOUBLE_EQ(a.start.value(), 100.0);
  EXPECT_DOUBLE_EQ(a.end.value(), 105.0);
  // Device idles between ops when the next op is not ready.
  Interval b = r.Schedule(200.0, 1.0);
  EXPECT_DOUBLE_EQ(b.start.value(), 200.0);
}

TEST(ResourceTest, StatsAccumulate) {
  Resource r("dev");
  r.Schedule(0.0, 2.0, 1000, "read");
  r.Schedule(10.0, 3.0, 2000, "write");
  EXPECT_EQ(r.stats().op_count, 2u);
  EXPECT_EQ(r.stats().bytes_transferred, 3000u);
  EXPECT_DOUBLE_EQ(r.stats().busy_seconds.value(), 5.0);
  EXPECT_DOUBLE_EQ(r.stats().horizon.value(), 13.0);
}

TEST(ResourceTest, UtilizationAgainstHorizonAndFixedSpan) {
  Resource r("dev");
  r.Schedule(0.0, 4.0);
  r.Schedule(6.0, 4.0);  // horizon 10, busy 8
  EXPECT_DOUBLE_EQ(r.Utilization(), 0.8);
  EXPECT_DOUBLE_EQ(r.Utilization(20.0), 0.4);
  EXPECT_DOUBLE_EQ(Resource("idle").Utilization(), 0.0);
}

TEST(ResourceTest, TraceRecordsOps) {
  Resource r("dev");
  r.EnableTrace();
  r.Schedule(0.0, 1.0, 10, "a");
  r.Schedule(0.0, 2.0, 20, "b");
  ASSERT_EQ(r.trace().size(), 2u);
  EXPECT_STREQ(r.trace()[0].tag, "a");
  EXPECT_EQ(r.trace()[1].bytes, 20u);
  EXPECT_DOUBLE_EQ(r.trace()[1].interval.start.value(), 1.0);
}

// A coalesced batch must leave the resource in exactly the state the
// equivalent per-op Schedule sequence would have: same availability, stats
// (busy seconds accumulated in the same float order), and horizon.
TEST(ResourceTest, ScheduleBatchMatchesPerOpSchedules) {
  Resource per_op("dev");
  std::vector<SimSeconds> durations{0.125, 0.25, 0.125, 0.25};
  std::vector<ByteCount> bytes{100, 200, 100, 200};
  Interval hull;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (std::size_t i = 0; i < durations.size(); ++i) {
      Interval interval = per_op.Schedule(0.5, durations[i], bytes[i], "op");
      if (cycle == 0 && i == 0) hull.start = interval.start;
      hull.end = interval.end;
    }
  }
  Resource batched("dev");
  std::vector<SimSeconds> cycle_durations{durations[0], durations[1]};
  std::vector<ByteCount> cycle_bytes{bytes[0], bytes[1]};
  Interval got = batched.ScheduleBatch(6, cycle_durations, cycle_bytes, hull, "op");
  EXPECT_DOUBLE_EQ(got.start.value(), (hull.start).value());
  EXPECT_DOUBLE_EQ(got.end.value(), (hull.end).value());
  EXPECT_DOUBLE_EQ((batched.available_at()).value(), (per_op.available_at()).value());
  EXPECT_EQ(batched.stats().op_count, per_op.stats().op_count);
  EXPECT_EQ(batched.stats().bytes_transferred, per_op.stats().bytes_transferred);
  EXPECT_EQ(batched.stats().busy_seconds, per_op.stats().busy_seconds);
  EXPECT_DOUBLE_EQ(batched.stats().horizon.value(), (per_op.stats().horizon).value());
}

TEST(ResourceTest, TraceOffByDefault) {
  Resource r("dev");
  r.Schedule(0.0, 1.0);
  EXPECT_TRUE(r.trace().empty());
}

TEST(ResourceTest, ResetClearsEverything) {
  Resource r("dev");
  r.EnableTrace();
  r.Schedule(0.0, 5.0, 100, "x");
  r.Reset();
  EXPECT_DOUBLE_EQ((r.available_at()).value(), 0.0);
  EXPECT_EQ(r.stats().op_count, 0u);
  EXPECT_TRUE(r.trace().empty());
}

TEST(TaskGraphTest, IndependentTasksOnDistinctResourcesOverlap) {
  Resource tape("tape"), disk("disk");
  TaskGraph g;
  g.Add(&tape, 10.0, {});
  g.Add(&disk, 4.0, {});
  auto makespan = g.Run();
  ASSERT_TRUE(makespan.ok());
  EXPECT_DOUBLE_EQ(makespan->value(), 10.0);  // parallel, not 14
}

TEST(TaskGraphTest, DependencyForcesSequencing) {
  Resource tape("tape"), disk("disk");
  TaskGraph g;
  TaskId read = g.Add(&tape, 10.0, {});
  g.Add(&disk, 4.0, {read});
  auto makespan = g.Run();
  ASSERT_TRUE(makespan.ok());
  EXPECT_DOUBLE_EQ(makespan->value(), 14.0);
  EXPECT_DOUBLE_EQ(g.interval(1).start.value(), 10.0);
}

TEST(TaskGraphTest, ResourceContentionSerializes) {
  Resource disk("disk");
  TaskGraph g;
  g.Add(&disk, 3.0, {});
  g.Add(&disk, 3.0, {});
  auto makespan = g.Run();
  ASSERT_TRUE(makespan.ok());
  EXPECT_DOUBLE_EQ(makespan->value(), 6.0);
}

TEST(TaskGraphTest, PipelineOverlapsStages) {
  // Classic two-stage pipeline: producer (tape) feeds consumer (disk),
  // 4 chunks, producer 5 s/chunk, consumer 3 s/chunk.
  Resource tape("tape"), disk("disk");
  TaskGraph g;
  TaskId prev_read = 0;
  for (int i = 0; i < 4; ++i) {
    TaskId read = g.Add(&tape, 5.0, {});
    g.Add(&disk, 3.0, {read});
    prev_read = read;
  }
  (void)prev_read;
  auto makespan = g.Run();
  ASSERT_TRUE(makespan.ok());
  // Producer finishes at 20; last consume starts at 20, ends at 23.
  EXPECT_DOUBLE_EQ(makespan->value(), 23.0);
}

TEST(TaskGraphTest, ForwardDependencyRejected) {
  Resource r("dev");
  TaskGraph g;
  g.Add(&r, 1.0, {5});  // depends on a task that does not exist yet
  EXPECT_FALSE(g.Run().ok());
}

TEST(TaskGraphTest, ActionsRunInDispatchOrder) {
  Resource r("dev");
  TaskGraph g;
  std::vector<int> order;
  g.Add(&r, 1.0, {}, "t0", [&] { order.push_back(0); });
  g.Add(&r, 1.0, {0}, "t1", [&] { order.push_back(1); });
  ASSERT_TRUE(g.Run().ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(SimulationTest, HorizonSpansResources) {
  Simulation sim;
  Resource* a = sim.CreateResource("a");
  Resource* b = sim.CreateResource("b");
  a->Schedule(0.0, 7.0);
  b->Schedule(0.0, 11.0);
  EXPECT_DOUBLE_EQ((sim.Horizon()).value(), 11.0);
  sim.Reset();
  EXPECT_DOUBLE_EQ((sim.Horizon()).value(), 0.0);
  EXPECT_EQ(sim.resources().size(), 2u);
}

}  // namespace
}  // namespace tertio::sim

// ---- Trace report ----------------------------------------------------------

#include <sstream>

#include "sim/trace_report.h"

namespace tertio::sim {
namespace {

TEST(TraceReportTest, GanttShowsBusyAndIdle) {
  Simulation sim;
  Resource* tape = sim.CreateResource("tape");
  Resource* disk = sim.CreateResource("disk");
  tape->EnableTrace();
  disk->EnableTrace();
  tape->Schedule(0.0, 50.0, 0, "read");   // busy first half
  disk->Schedule(50.0, 50.0, 0, "write"); // busy second half
  GanttOptions options;
  options.width = 10;
  std::string gantt = RenderGantt(sim, options);
  // tape: #####.....  disk: .....#####
  EXPECT_NE(gantt.find("tape  #####....."), std::string::npos) << gantt;
  EXPECT_NE(gantt.find("disk  .....#####"), std::string::npos) << gantt;
  EXPECT_NE(gantt.find("50%"), std::string::npos);
}

TEST(TraceReportTest, UntracedResourceIsFlagged) {
  Simulation sim;
  Resource* r = sim.CreateResource("quiet");
  r->Schedule(0.0, 10.0);
  std::string gantt = RenderGantt(sim);
  EXPECT_NE(gantt.find("(no trace)"), std::string::npos);
}

TEST(TraceReportTest, CsvListsEveryOp) {
  Simulation sim;
  Resource* r = sim.CreateResource("dev");
  r->EnableTrace();
  r->Schedule(0.0, 1.0, 100, "a");
  r->Schedule(0.0, 2.0, 200, "b");
  std::ostringstream out;
  WriteTraceCsv(sim, out);
  std::string csv = out.str();
  EXPECT_NE(csv.find("resource,tag,start,end,bytes"), std::string::npos);
  EXPECT_NE(csv.find("dev,a,0,1,100"), std::string::npos);
  EXPECT_NE(csv.find("dev,b,1,3,200"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Closed-form iterated accumulation (sim/closed_form.h): the O(1)-per-binade
// jump must be bit-identical to the literal rounded-addition loop. These are
// exactness tests — EXPECT_EQ on doubles throughout, never near-comparisons.
// ---------------------------------------------------------------------------

SimSeconds LiteralLoop(SimSeconds acc, std::span<const SimSeconds> deltas,
                       std::uint64_t cycles) {
  for (std::uint64_t c = 0; c < cycles; ++c) {
    for (SimSeconds d : deltas) acc += d;
  }
  return acc;
}

TEST(ClosedFormTest, MatchesLiteralLoopAcrossBinadeCrossings) {
  // Deltas sized so a few hundred thousand iterations cross many binades of
  // the accumulator, including the transition from a zero start.
  const std::vector<std::vector<SimSeconds>> cycles = {
      {1e-7},
      {3.515625e-3},                        // exact dyadic step
      {1e-7, 2.5e-6, 3.3e-5},               // mixed-magnitude cycle
      {0.125, 0.1249999999999999},          // near-equal pair, half-ulp ties
      {1.0 / 3.0, 2.0 / 3.0, 1.0 / 7.0}};  // non-dyadic steps
  const SimSeconds seeds[] = {0.0, 1e-9, 0.75, 1.0, 12345.678};
  const std::uint64_t counts[] = {0, 1, 2, 7, 1000, 250000};
  for (const auto& deltas : cycles) {
    for (SimSeconds seed : seeds) {
      for (std::uint64_t n : counts) {
        const SimSeconds expect = LiteralLoop(seed, deltas, n);
        const SimSeconds got = IteratedAddCycle(seed, deltas, n);
        EXPECT_EQ(expect, got) << "seed=" << seed << " n=" << n
                               << " deltas[0]=" << deltas[0];
      }
    }
  }
}

TEST(ClosedFormTest, MatchesLiteralLoopOnRandomizedInputs) {
  Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<SimSeconds> deltas(1 + rng.NextBelow(4));
    for (SimSeconds& d : deltas) {
      // Durations spanning ~9 orders of magnitude, as chunk costs do.
      d = 1e-9 * static_cast<double>(1 + rng.NextBelow(1000000000ull));
    }
    const SimSeconds seed = 1e-6 * static_cast<double>(rng.NextBelow(1000000000ull));
    const std::uint64_t n = rng.NextBelow(100000);
    const SimSeconds expect = LiteralLoop(seed, deltas, n);
    const SimSeconds got = IteratedAddCycle(seed, deltas, n);
    EXPECT_EQ(expect, got) << "trial=" << trial << " seed=" << seed << " n=" << n;
  }
}

TEST(ClosedFormTest, SingleDeltaConvenienceAgrees) {
  EXPECT_EQ(LiteralLoop(0.0, std::span<const SimSeconds>(), 5), 0.0);
  const SimSeconds d = 2.00000000001e-3;
  SimSeconds acc = 0.4;
  for (int i = 0; i < 1000; ++i) acc += d;
  EXPECT_EQ(acc, IteratedAdd(0.4, d, 1000));
  // Non-finite and negative inputs take the literal-loop fallback and must
  // still agree with it.
  const SimSeconds neg[] = {-0.25, 1.0};
  EXPECT_EQ(LiteralLoop(1.0, neg, 31), IteratedAddCycle(1.0, neg, 31));
}

}  // namespace
}  // namespace tertio::sim
