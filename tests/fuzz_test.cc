// Randomized model-checking tests: the allocator, the interleaved buffer,
// and the block codec are exercised with thousands of random operations and
// compared against simple reference models.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "disk/allocator.h"
#include "mem/double_buffer.h"
#include "relation/block.h"
#include "relation/generator.h"
#include "relation/tuple.h"
#include "sim/simulation.h"
#include "tape/tape_scheduler.h"
#include "util/rng.h"

namespace tertio {
namespace {

TEST(AllocatorFuzzTest, RandomAllocFreeNeverCorrupts) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    disk::DiskSpaceAllocator allocator({400, 400, 400}, /*stripe_unit=*/16);
    const BlockCount capacity = allocator.capacity_blocks();
    std::vector<disk::ExtentList> live;
    BlockCount live_blocks = 0;
    // Reference model: the set of allocated (disk, block) cells.
    std::set<std::pair<int, BlockIndex>> cells;

    for (int step = 0; step < 3000; ++step) {
      bool do_alloc = live.empty() || (rng.NextBelow(100) < 55 && live_blocks < capacity);
      if (do_alloc) {
        BlockCount want = 1 + rng.NextBelow(60);
        auto extents = allocator.Allocate(want, static_cast<double>(step), "fuzz");
        if (want > capacity - live_blocks) {
          EXPECT_FALSE(extents.ok()) << "allocation beyond capacity succeeded";
          continue;
        }
        ASSERT_TRUE(extents.ok()) << extents.status();
        ASSERT_EQ(disk::TotalBlocks(*extents), want);
        // No cell may be handed out twice.
        for (const disk::Extent& e : *extents) {
          for (BlockCount b = 0; b < e.count; ++b) {
            auto [it, inserted] = cells.emplace(e.disk, e.start + b);
            ASSERT_TRUE(inserted) << "double allocation of disk " << e.disk << " block "
                                  << e.start + b;
          }
        }
        live_blocks += want;
        live.push_back(std::move(*extents));
      } else {
        size_t victim = rng.NextBelow(live.size());
        disk::ExtentList extents = std::move(live[victim]);
        live.erase(live.begin() + static_cast<long>(victim));
        BlockCount count = disk::TotalBlocks(extents);
        ASSERT_TRUE(allocator.Free(extents, static_cast<double>(step), "fuzz").ok());
        for (const disk::Extent& e : extents) {
          for (BlockCount b = 0; b < e.count; ++b) {
            ASSERT_EQ(cells.erase({e.disk, e.start + b}), 1u);
          }
        }
        live_blocks -= count;
      }
      ASSERT_EQ(allocator.used_blocks(), live_blocks);
      ASSERT_EQ(allocator.used_blocks(), cells.size());
    }
    // Free everything; the allocator must coalesce back to one whole run.
    for (auto& extents : live) {
      ASSERT_TRUE(allocator.Free(extents, 1e9, "fuzz").ok());
    }
    EXPECT_EQ(allocator.used_blocks(), 0u);
    EXPECT_TRUE(allocator.Allocate(capacity, 1e9, "all").ok());
  }
}

TEST(InterleavedBufferFuzzTest, MatchesEventReplayModel) {
  // Model: the buffer returns, for each acquire of k slots, the maximum
  // release time among the k oldest free slots. Replay a random
  // produce/consume schedule against a literal queue of (time, slot) events.
  for (std::uint64_t seed : {11u, 12u}) {
    Rng rng(seed);
    const BlockCount capacity = 64;
    mem::InterleavedBuffer buffer(capacity);
    std::vector<double> free_slots(capacity.value(), 0.0);  // reference: FIFO of free times
    size_t head = 0;  // model the deque with an index into a growing vector
    BlockCount occupied = 0;
    double clock = 0.0;

    for (int step = 0; step < 2000; ++step) {
      bool acquire = occupied == 0 || (rng.NextBelow(2) == 0 && occupied < capacity);
      if (acquire) {
        BlockCount take = 1 + rng.NextBelow((capacity - occupied).value());
        auto got = buffer.AcquireFree(take);
        ASSERT_TRUE(got.ok());
        double expected = 0.0;
        for (BlockCount i = 0; i < take; ++i) {
          expected = std::max(expected, free_slots[head++]);
        }
        ASSERT_DOUBLE_EQ(got.value().value(), expected) << "step " << step;
        occupied += take;
      } else {
        BlockCount give = 1 + rng.NextBelow(occupied.value());
        clock += 1.0 + static_cast<double>(rng.NextBelow(5));
        ASSERT_TRUE(buffer.Release(give, clock).ok());
        for (BlockCount i = 0; i < give; ++i) free_slots.push_back(clock);
        occupied -= give;
      }
      ASSERT_EQ(buffer.occupied_blocks(), occupied);
    }
  }
}

TEST(BlockCodecFuzzTest, RandomRecordsRoundTrip) {
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    ByteCount record_bytes = 16 + rng.NextBelow(120);
    ByteCount block_bytes = 512 + rng.NextBelow(4) * 512;
    rel::Schema schema = rel::Schema::KeyPayload(record_bytes);
    if (block_bytes <= rel::kBlockHeaderBytes + record_bytes) continue;
    rel::BlockBuilder builder(&schema, block_bytes);
    rel::TupleBuilder tuple(&schema);
    std::vector<int64_t> keys;
    BlockCount count = rng.NextBelow(builder.capacity() + 1);
    for (BlockCount i = 0; i < count; ++i) {
      auto key = static_cast<int64_t>(rng.Next());
      keys.push_back(key);
      tuple.SetInt64(0, key);
      ASSERT_TRUE(builder.Append(tuple.bytes()).ok());
    }
    auto reader = rel::BlockReader::Open(builder.Finish(), &schema);
    ASSERT_TRUE(reader.ok());
    ASSERT_EQ(reader->record_count(), keys.size());
    for (std::uint64_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(rel::Tuple(reader->record(i), &schema).GetInt64(0), keys[i]);
    }
  }
}

TEST(SchedulerFuzzTest, OrderingPoliciesNeverLoseOrDuplicateRequests) {
  Rng rng(7);
  tape::TapeVolume volume("t", 1024);
  ASSERT_TRUE(volume.AppendPhantom(100000, 0.0).ok());
  for (auto policy : {tape::SchedulePolicy::kFifo, tape::SchedulePolicy::kSortedAscending,
                      tape::SchedulePolicy::kElevator}) {
    sim::Simulation sim;
    tape::TapeDrive drive("d", tape::TapeDriveModel::DLT4000(), sim.CreateResource("t"));
    ASSERT_TRUE(drive.Load(&volume, 0.0).ok());
    tape::TapeScheduler scheduler(&drive, policy);
    std::set<std::uint64_t> submitted;
    for (int batch = 0; batch < 5; ++batch) {
      int n = 1 + static_cast<int>(rng.NextBelow(40));
      for (int i = 0; i < n; ++i) {
        std::uint64_t id = rng.Next();
        submitted.insert(id);
        scheduler.Submit({id, rng.NextBelow(99000), 1 + rng.NextBelow(1000)});
      }
      auto done = scheduler.ExecuteBatch(0.0);
      ASSERT_TRUE(done.ok());
      // Completions are time-ordered and cover exactly the submissions.
      SimSeconds last = 0.0;
      for (const auto& completion : done.completions) {
        EXPECT_GE(completion.interval.end, last);
        last = completion.interval.end;
        ASSERT_EQ(submitted.erase(completion.id), 1u);
      }
      EXPECT_TRUE(submitted.empty());
    }
  }
}

TEST(ZipfSamplerFuzzTest, FrequenciesFollowRankOrder) {
  // The top-ranked key must dominate; frequencies must roughly decay.
  rel::KeySampler sampler(rel::KeySequence::kZipf, 100, 1.2, 31);
  std::map<int64_t, int> histogram;
  for (int i = 0; i < 30000; ++i) histogram[sampler.Next(0)]++;
  std::vector<int> counts;
  for (const auto& [key, count] : histogram) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  ASSERT_GE(counts.size(), 3u);
  EXPECT_GT(counts[0], 3 * counts[counts.size() / 2]);  // heavy head
  // All keys in domain.
  for (const auto& [key, count] : histogram) {
    EXPECT_GE(key, 0);
    EXPECT_LT(key, 100);
  }
}

}  // namespace
}  // namespace tertio
